// Schedule result container and schedule-derived analyses.
#pragma once

#include <algorithm>
#include <vector>

#include "dfg/graph.hpp"
#include "dfg/node_set.hpp"
#include "isa/opcode.hpp"

namespace isex::sched {

/// Cycle-accurate placement of every node of one DFG.
struct Schedule {
  /// Issue cycle per node (0-based).
  std::vector<int> slot;
  /// Total cycles until the last result is available (makespan).
  int cycles = 0;

  bool valid() const { return !slot.empty(); }
  int start_of(dfg::NodeId v) const { return slot[v]; }
};

/// Per-node latency in cycles used by the scheduler: 1 for regular PISA
/// operations (paper §5.1), the committed ASFU latency for ISE supernodes,
/// and — when the memory-hierarchy model annotated the block
/// (mem::annotate_graph) — the modeled load/store latency.  An unannotated
/// node (mem_latency == 0) keeps the legacy fixed cost, so the null cache
/// model reproduces historic schedules bit-for-bit.  Templated over the
/// graph type so dfg::Graph and dfg::CollapsedView (the copy-free candidate
/// overlay) share one definition.
template <typename G>
int node_latency(const G& graph, dfg::NodeId v) {
  // const auto& also binds CollapsedView's by-value NodeView (lifetime
  // extension) without copying Graph's string-carrying Node.
  const auto& n = graph.node(v);
  if (n.is_ise) return n.ise.latency_cycles;
  return n.mem_latency > 0 ? n.mem_latency : 1;
}

/// Register read/write ports a node consumes in its issue cycle.
template <typename G>
int read_ports_used(const G& graph, dfg::NodeId v) {
  const auto& n = graph.node(v);
  if (n.is_ise) return n.ise.num_inputs;
  // Register sources: in-block producer edges plus live-in operands, capped
  // by the ISA's operand count for the opcode.
  const int operands =
      static_cast<int>(graph.preds(v).size()) + graph.extern_inputs(v);
  return std::min(operands, static_cast<int>(isa::traits(n.opcode).num_srcs));
}

template <typename G>
int write_ports_used(const G& graph, dfg::NodeId v) {
  const auto& n = graph.node(v);
  if (n.is_ise) return n.ise.num_outputs;
  return isa::traits(n.opcode).has_dst ? 1 : 0;
}

/// Nodes on a schedule-tight chain that realizes the makespan: the node's
/// finish time equals the makespan, or some tight successor (issued exactly
/// when this node's result becomes ready) is critical.  This is the
/// "location of operations" signal the paper's merit case 1 consumes.
dfg::NodeSet critical_nodes(const dfg::Graph& graph, const Schedule& schedule);

/// Verifies dependence correctness: every edge (u, v) has
/// slot[v] >= slot[u] + latency(u).  Used by tests and assertions.
bool respects_dependences(const dfg::Graph& graph, const Schedule& schedule);

}  // namespace isex::sched
