#include "sched/schedule.hpp"

#include <algorithm>

#include "isa/opcode.hpp"
#include "util/assert.hpp"

namespace isex::sched {

dfg::NodeSet critical_nodes(const dfg::Graph& graph, const Schedule& schedule) {
  ISEX_ASSERT(schedule.slot.size() == graph.num_nodes());
  dfg::NodeSet critical(graph.num_nodes());
  if (graph.num_nodes() == 0) return critical;

  // Seed: nodes finishing at the makespan.
  const std::vector<dfg::NodeId> topo = graph.topological_order();
  for (const dfg::NodeId v : topo) {
    if (schedule.slot[v] + node_latency(graph, v) == schedule.cycles)
      critical.insert(v);
  }
  // Backward closure over tight edges.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const dfg::NodeId v = *it;
    if (!critical.contains(v)) continue;
    for (const dfg::NodeId p : graph.preds(v)) {
      if (schedule.slot[p] + node_latency(graph, p) == schedule.slot[v])
        critical.insert(p);
    }
  }
  return critical;
}

bool respects_dependences(const dfg::Graph& graph, const Schedule& schedule) {
  if (schedule.slot.size() != graph.num_nodes()) return false;
  for (dfg::NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (const dfg::NodeId v : graph.succs(u)) {
      if (schedule.slot[v] < schedule.slot[u] + node_latency(graph, u))
        return false;
    }
  }
  return true;
}

}  // namespace isex::sched
