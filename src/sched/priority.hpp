// Scheduling-priority (SP) functions.
//
// The paper uses the number of child operations as SP (§4.3) and explicitly
// notes that mobility-based priorities are an alternative (Ch. 6 future
// work); both are provided, plus descendant count for ablations.
//
// compute_priorities_into is the allocation-free core: it is templated over
// the graph type (dfg::Graph or dfg::CollapsedView) and writes into a
// caller-owned PriorityScratch, so the scratch-backed scheduler recomputes
// priorities per candidate without touching the heap once warmed up.  The
// classic vector-returning compute_priorities delegates to it; both produce
// bit-identical scores (every floating-point reduction below is a pure
// max/min fold, which is order-independent).
#pragma once

#include <algorithm>
#include <vector>

#include "dfg/graph.hpp"
#include "dfg/node_set.hpp"
#include "sched/schedule.hpp"
#include "util/assert.hpp"

namespace isex::sched {

enum class PriorityKind {
  /// Immediate successor count (paper default).
  kChildCount,
  /// Negated mobility (ALAP − ASAP): zero-slack nodes rank highest.
  kMobility,
  /// Total transitive successor count.
  kDescendantCount,
};

/// Reusable buffers for compute_priorities_into.  `score` is the output;
/// everything else is working storage for the mobility / descendant kinds.
struct PriorityScratch {
  std::vector<double> score;
  std::vector<dfg::NodeId> topo;
  std::vector<dfg::NodeId> stack;
  std::vector<int> indeg;
  std::vector<double> earliest;
  std::vector<double> latest;
  /// Per-node descendant rows (kDescendantCount only).
  std::vector<dfg::NodeSet> desc;
};

namespace detail {

/// Kahn topological order into s.topo, matching Graph::topological_order's
/// stack discipline.  Asserts the graph is acyclic.
template <typename G>
void topological_order_into(const G& graph, PriorityScratch& s) {
  const std::size_t n = graph.num_nodes();
  s.indeg.assign(n, 0);
  s.topo.clear();
  for (dfg::NodeId v = 0; v < n; ++v)
    s.indeg[v] = static_cast<int>(graph.preds(v).size());
  s.stack.clear();
  for (dfg::NodeId v = 0; v < n; ++v)
    if (s.indeg[v] == 0) s.stack.push_back(v);
  while (!s.stack.empty()) {
    const dfg::NodeId v = s.stack.back();
    s.stack.pop_back();
    s.topo.push_back(v);
    for (const dfg::NodeId c : graph.succs(v))
      if (--s.indeg[c] == 0) s.stack.push_back(c);
  }
  ISEX_ASSERT_MSG(s.topo.size() == n, "graph contains a cycle");
}

}  // namespace detail

/// Computes a priority score per node into s.score; higher score = schedule
/// earlier.  Scores are non-negative.
template <typename G>
void compute_priorities_into(const G& graph, PriorityKind kind,
                             PriorityScratch& s) {
  const std::size_t n = graph.num_nodes();
  s.score.assign(n, 0.0);

  switch (kind) {
    case PriorityKind::kChildCount: {
      for (dfg::NodeId v = 0; v < n; ++v)
        s.score[v] = static_cast<double>(graph.succs(v).size());
      break;
    }
    case PriorityKind::kMobility: {
      // Dependence-only ASAP/ALAP (dfg::longest_path's arithmetic, inlined
      // so it runs over any graph type without per-call allocation).
      detail::topological_order_into(graph, s);
      s.earliest.assign(n, 0.0);
      s.latest.assign(n, 0.0);
      const auto latency = [&](dfg::NodeId v) {
        return static_cast<double>(node_latency(graph, v));
      };
      double total = 0.0;
      for (const dfg::NodeId v : s.topo) {
        double start = 0.0;
        for (const dfg::NodeId p : graph.preds(v))
          start = std::max(start, s.earliest[p] + latency(p));
        s.earliest[v] = start;
        total = std::max(total, start + latency(v));
      }
      for (auto it = s.topo.rbegin(); it != s.topo.rend(); ++it) {
        const dfg::NodeId v = *it;
        double latest = total - latency(v);
        for (const dfg::NodeId c : graph.succs(v))
          latest = std::min(latest, s.latest[c] - latency(v));
        s.latest[v] = latest;
      }
      double max_mobility = 0.0;
      for (dfg::NodeId v = 0; v < n; ++v)
        max_mobility = std::max(max_mobility, s.latest[v] - s.earliest[v]);
      for (dfg::NodeId v = 0; v < n; ++v)
        s.score[v] = max_mobility - (s.latest[v] - s.earliest[v]);
      break;
    }
    case PriorityKind::kDescendantCount: {
      // desc[v] = ∪ over children c of ({c} ∪ desc[c]), in reverse
      // topological order — the same sets dfg::Reachability builds.
      detail::topological_order_into(graph, s);
      if (s.desc.size() < n) s.desc.resize(n);
      for (auto it = s.topo.rbegin(); it != s.topo.rend(); ++it) {
        const dfg::NodeId v = *it;
        dfg::NodeSet& row = s.desc[v];
        row.resize(n);  // clears; reuses the word buffer when sized already
        for (const dfg::NodeId c : graph.succs(v)) {
          row.insert(c);
          row |= s.desc[c];
        }
        s.score[v] = static_cast<double>(row.count());
      }
      break;
    }
  }
}

/// Vector-returning convenience over compute_priorities_into.
std::vector<double> compute_priorities(const dfg::Graph& graph, PriorityKind kind);

}  // namespace isex::sched
