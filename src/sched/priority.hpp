// Scheduling-priority (SP) functions.
//
// The paper uses the number of child operations as SP (§4.3) and explicitly
// notes that mobility-based priorities are an alternative (Ch. 6 future
// work); both are provided, plus descendant count for ablations.
#pragma once

#include <vector>

#include "dfg/graph.hpp"

namespace isex::sched {

enum class PriorityKind {
  /// Immediate successor count (paper default).
  kChildCount,
  /// Negated mobility (ALAP − ASAP): zero-slack nodes rank highest.
  kMobility,
  /// Total transitive successor count.
  kDescendantCount,
};

/// Computes a priority score per node; higher score = schedule earlier.
/// Scores are non-negative.
std::vector<double> compute_priorities(const dfg::Graph& graph, PriorityKind kind);

}  // namespace isex::sched
