#include "sched/list_scheduler.hpp"

#include <algorithm>

#include "isa/opcode.hpp"
#include "util/assert.hpp"

namespace isex::sched {
namespace {

/// Mutable per-cycle resource ledger.
struct CycleResources {
  int issue_used = 0;
  int reads_used = 0;
  int writes_used = 0;
  std::array<int, kNumFuClasses> fu_used{};
};

isa::FuClass fu_class_of(const dfg::Graph& graph, dfg::NodeId v) {
  const dfg::Node& n = graph.node(v);
  // ISE supernodes execute on their ASFU, not a core FU; model them as not
  // competing for FU slots (they still consume an issue slot and ports).
  return n.is_ise ? isa::FuClass::kAlu : isa::traits(n.opcode).fu;
}

bool fits(const MachineConfig& cfg, const CycleResources& res,
          const dfg::Graph& graph, dfg::NodeId v) {
  if (res.issue_used + 1 > cfg.issue_width) return false;
  if (res.reads_used + read_ports_used(graph, v) > cfg.reg_file.read_ports)
    return false;
  if (res.writes_used + write_ports_used(graph, v) > cfg.reg_file.write_ports)
    return false;
  if (!graph.node(v).is_ise) {
    const auto cls = static_cast<std::size_t>(fu_class_of(graph, v));
    if (res.fu_used[cls] + 1 > cfg.fu_counts[cls]) return false;
  }
  return true;
}

void charge(CycleResources& res, const dfg::Graph& graph, dfg::NodeId v) {
  res.issue_used += 1;
  res.reads_used += read_ports_used(graph, v);
  res.writes_used += write_ports_used(graph, v);
  if (!graph.node(v).is_ise)
    res.fu_used[static_cast<std::size_t>(fu_class_of(graph, v))] += 1;
}

}  // namespace

Schedule ListScheduler::run(const dfg::Graph& graph) const {
  const std::size_t n = graph.num_nodes();
  Schedule sched;
  sched.slot.assign(n, -1);
  if (n == 0) return sched;

  const std::vector<double> priority = compute_priorities(graph, priority_);

  std::vector<int> unresolved(n, 0);
  std::vector<int> ready_at(n, 0);  // earliest cycle dependences allow
  for (dfg::NodeId v = 0; v < n; ++v)
    unresolved[v] = static_cast<int>(graph.preds(v).size());

  std::vector<dfg::NodeId> ready;
  for (dfg::NodeId v = 0; v < n; ++v)
    if (unresolved[v] == 0) ready.push_back(v);

  // Deferred arrivals: nodes whose dependences resolve at a future cycle.
  std::vector<std::vector<dfg::NodeId>> arriving;

  std::size_t scheduled = 0;
  int cycle = 0;
  int makespan = 0;
  std::vector<dfg::NodeId> pending;  // ready but beyond current cycle

  while (scheduled < n) {
    if (static_cast<std::size_t>(cycle) < arriving.size()) {
      for (const dfg::NodeId v : arriving[cycle]) ready.push_back(v);
      arriving[cycle].clear();
    }

    // Highest priority first; ties broken by node id for determinism.
    std::sort(ready.begin(), ready.end(), [&](dfg::NodeId a, dfg::NodeId b) {
      if (priority[a] != priority[b]) return priority[a] > priority[b];
      return a < b;
    });

    CycleResources res;
    std::vector<dfg::NodeId> leftover;
    for (const dfg::NodeId v : ready) {
      if (ready_at[v] <= cycle && fits(config_, res, graph, v)) {
        charge(res, graph, v);
        sched.slot[v] = cycle;
        ++scheduled;
        const int finish = cycle + node_latency(graph, v);
        makespan = std::max(makespan, finish);
        for (const dfg::NodeId s : graph.succs(v)) {
          ready_at[s] = std::max(ready_at[s], finish);
          if (--unresolved[s] == 0) {
            if (static_cast<std::size_t>(ready_at[s]) >= arriving.size())
              arriving.resize(static_cast<std::size_t>(ready_at[s]) + 1);
            if (ready_at[s] <= cycle + 1) {
              leftover.push_back(s);
            } else {
              arriving[static_cast<std::size_t>(ready_at[s])].push_back(s);
            }
          }
        }
      } else {
        leftover.push_back(v);
      }
    }
    ready = std::move(leftover);
    ++cycle;
    ISEX_ASSERT_MSG(cycle <= static_cast<int>(n) * 64 + 64,
                    "scheduler failed to make progress");
  }

  sched.cycles = makespan;
  ISEX_ASSERT(respects_dependences(graph, sched));
  return sched;
}

}  // namespace isex::sched
