#include "sched/list_scheduler.hpp"

#include <algorithm>

#include "isa/opcode.hpp"
#include "util/assert.hpp"

namespace isex::sched {
namespace {

/// Mutable per-cycle resource ledger.
struct CycleResources {
  int issue_used = 0;
  int reads_used = 0;
  int writes_used = 0;
  std::array<int, kNumFuClasses> fu_used{};
};

template <typename G>
isa::FuClass fu_class_of(const G& graph, dfg::NodeId v) {
  const auto& n = graph.node(v);
  // ISE supernodes execute on their ASFU, not a core FU; model them as not
  // competing for FU slots (they still consume an issue slot and ports).
  return n.is_ise ? isa::FuClass::kAlu : isa::traits(n.opcode).fu;
}

template <typename G>
bool fits(const MachineConfig& cfg, const CycleResources& res, const G& graph,
          dfg::NodeId v) {
  if (res.issue_used + 1 > cfg.issue_width) return false;
  if (res.reads_used + read_ports_used(graph, v) > cfg.reg_file.read_ports)
    return false;
  if (res.writes_used + write_ports_used(graph, v) > cfg.reg_file.write_ports)
    return false;
  if (!graph.node(v).is_ise) {
    const auto cls = static_cast<std::size_t>(fu_class_of(graph, v));
    if (res.fu_used[cls] + 1 > cfg.fu_counts[cls]) return false;
  }
  return true;
}

template <typename G>
void charge(CycleResources& res, const G& graph, dfg::NodeId v) {
  res.issue_used += 1;
  res.reads_used += read_ports_used(graph, v);
  res.writes_used += write_ports_used(graph, v);
  if (!graph.node(v).is_ise)
    res.fu_used[static_cast<std::size_t>(fu_class_of(graph, v))] += 1;
}

/// The scheduling core, shared by run() and the scratch-backed cycles()
/// overloads.  Reads only num_nodes/preds/succs/node/extern_inputs of G, so
/// dfg::Graph and dfg::CollapsedView behave identically; placements land in
/// scratch.slot and the makespan is returned.
template <typename G>
int schedule_into(const MachineConfig& config, PriorityKind priority_kind,
                  const G& graph, SchedulerScratch& s) {
  const std::size_t n = graph.num_nodes();
  s.slot.assign(n, -1);
  if (n == 0) return 0;

  compute_priorities_into(graph, priority_kind, s.priority);
  const std::vector<double>& priority = s.priority.score;

  // Priorities are fixed for the whole run, so the ready list is kept
  // permanently sorted (highest priority first, ties by node id) and new
  // arrivals merge in — no full re-sort per cycle.  The comparator is a
  // strict total order (ids are unique), so the per-cycle issue order is
  // identical to re-sorting from scratch.
  const auto before = [&](dfg::NodeId a, dfg::NodeId b) {
    if (priority[a] != priority[b]) return priority[a] > priority[b];
    return a < b;
  };

  s.unresolved.assign(n, 0);
  s.ready_at.assign(n, 0);  // earliest cycle dependences allow
  for (dfg::NodeId v = 0; v < n; ++v)
    s.unresolved[v] = static_cast<int>(graph.preds(v).size());

  std::vector<dfg::NodeId>& ready = s.ready;
  ready.clear();
  for (dfg::NodeId v = 0; v < n; ++v)
    if (s.unresolved[v] == 0) ready.push_back(v);
  std::sort(ready.begin(), ready.end(), before);

  // Deferred arrivals: nodes whose dependences resolve at a future cycle.
  // Rows persist across runs (drained rows are cleared in the loop; clearing
  // here covers a prior run that asserted out mid-flight).
  std::vector<std::vector<dfg::NodeId>>& arriving = s.arriving;
  for (std::vector<dfg::NodeId>& row : arriving) row.clear();

  // Merges the sorted run [mid, end) of `list` into the sorted [0, mid).
  // Merged by hand through the reused s.merge_tmp: std::inplace_merge
  // heap-allocates a temporary buffer per call, which would break the
  // zero-allocation contract of warmed-up candidate evaluations.  The
  // comparator is a strict total order, so the merged sequence is the unique
  // sorted one either way.
  const auto merge_tail = [&](std::vector<dfg::NodeId>& list,
                              std::size_t mid) {
    std::sort(list.begin() + static_cast<std::ptrdiff_t>(mid), list.end(),
              before);
    std::vector<dfg::NodeId>& tmp = s.merge_tmp;
    tmp.assign(list.begin() + static_cast<std::ptrdiff_t>(mid), list.end());
    std::ptrdiff_t i = static_cast<std::ptrdiff_t>(mid) - 1;
    std::ptrdiff_t j = static_cast<std::ptrdiff_t>(tmp.size()) - 1;
    std::ptrdiff_t k = static_cast<std::ptrdiff_t>(list.size()) - 1;
    while (j >= 0) {
      if (i >= 0 && before(tmp[static_cast<std::size_t>(j)],
                           list[static_cast<std::size_t>(i)])) {
        list[static_cast<std::size_t>(k--)] = list[static_cast<std::size_t>(i--)];
      } else {
        list[static_cast<std::size_t>(k--)] = tmp[static_cast<std::size_t>(j--)];
      }
    }
  };

  std::size_t scheduled = 0;
  int cycle = 0;
  int makespan = 0;
  std::vector<dfg::NodeId>& leftover = s.leftover;  // reused across cycles
  std::vector<dfg::NodeId>& newly = s.newly;  // successors readied for cycle+1
  leftover.clear();
  newly.clear();
  leftover.reserve(n);

  while (scheduled < n) {
    if (static_cast<std::size_t>(cycle) < arriving.size() &&
        !arriving[cycle].empty()) {
      const std::size_t mid = ready.size();
      ready.insert(ready.end(), arriving[cycle].begin(), arriving[cycle].end());
      merge_tail(ready, mid);
      arriving[cycle].clear();
    }

    CycleResources res;
    leftover.clear();
    newly.clear();
    for (const dfg::NodeId v : ready) {
      if (s.ready_at[v] <= cycle && fits(config, res, graph, v)) {
        charge(res, graph, v);
        s.slot[v] = cycle;
        ++scheduled;
        const int finish = cycle + node_latency(graph, v);
        makespan = std::max(makespan, finish);
        for (const dfg::NodeId succ : graph.succs(v)) {
          s.ready_at[succ] = std::max(s.ready_at[succ], finish);
          if (--s.unresolved[succ] == 0) {
            if (static_cast<std::size_t>(s.ready_at[succ]) >= arriving.size())
              arriving.resize(static_cast<std::size_t>(s.ready_at[succ]) + 1);
            if (s.ready_at[succ] <= cycle + 1) {
              newly.push_back(succ);
            } else {
              arriving[static_cast<std::size_t>(s.ready_at[succ])].push_back(
                  succ);
            }
          }
        }
      } else {
        // Traversal order is sorted order, so unissued nodes land in
        // `leftover` already sorted; freshly readied successors collect in
        // `newly` and merge in below.
        leftover.push_back(v);
      }
    }
    if (!newly.empty()) {
      const std::size_t mid = leftover.size();
      leftover.insert(leftover.end(), newly.begin(), newly.end());
      merge_tail(leftover, mid);
    }
    std::swap(ready, leftover);
    ++cycle;
    ISEX_ASSERT_MSG(cycle <= static_cast<int>(n) * 64 + 64,
                    "scheduler failed to make progress");
  }

  return makespan;
}

}  // namespace

Schedule ListScheduler::run(const dfg::Graph& graph) const {
  SchedulerScratch scratch;
  Schedule sched;
  sched.cycles = schedule_into(config_, priority_, graph, scratch);
  sched.slot = std::move(scratch.slot);
  ISEX_ASSERT(respects_dependences(graph, sched));
  return sched;
}

template <typename G>
int ListScheduler::cycles(const G& graph, SchedulerScratch& scratch) const {
  return schedule_into(config_, priority_, graph, scratch);
}

template int ListScheduler::cycles<dfg::Graph>(const dfg::Graph&,
                                               SchedulerScratch&) const;
template int ListScheduler::cycles<dfg::CollapsedView>(
    const dfg::CollapsedView&, SchedulerScratch&) const;

}  // namespace isex::sched
