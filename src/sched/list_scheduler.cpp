#include "sched/list_scheduler.hpp"

#include <algorithm>

#include "isa/opcode.hpp"
#include "util/assert.hpp"

namespace isex::sched {
namespace {

/// Mutable per-cycle resource ledger.
struct CycleResources {
  int issue_used = 0;
  int reads_used = 0;
  int writes_used = 0;
  std::array<int, kNumFuClasses> fu_used{};
};

isa::FuClass fu_class_of(const dfg::Graph& graph, dfg::NodeId v) {
  const dfg::Node& n = graph.node(v);
  // ISE supernodes execute on their ASFU, not a core FU; model them as not
  // competing for FU slots (they still consume an issue slot and ports).
  return n.is_ise ? isa::FuClass::kAlu : isa::traits(n.opcode).fu;
}

bool fits(const MachineConfig& cfg, const CycleResources& res,
          const dfg::Graph& graph, dfg::NodeId v) {
  if (res.issue_used + 1 > cfg.issue_width) return false;
  if (res.reads_used + read_ports_used(graph, v) > cfg.reg_file.read_ports)
    return false;
  if (res.writes_used + write_ports_used(graph, v) > cfg.reg_file.write_ports)
    return false;
  if (!graph.node(v).is_ise) {
    const auto cls = static_cast<std::size_t>(fu_class_of(graph, v));
    if (res.fu_used[cls] + 1 > cfg.fu_counts[cls]) return false;
  }
  return true;
}

void charge(CycleResources& res, const dfg::Graph& graph, dfg::NodeId v) {
  res.issue_used += 1;
  res.reads_used += read_ports_used(graph, v);
  res.writes_used += write_ports_used(graph, v);
  if (!graph.node(v).is_ise)
    res.fu_used[static_cast<std::size_t>(fu_class_of(graph, v))] += 1;
}

}  // namespace

Schedule ListScheduler::run(const dfg::Graph& graph) const {
  const std::size_t n = graph.num_nodes();
  Schedule sched;
  sched.slot.assign(n, -1);
  if (n == 0) return sched;

  const std::vector<double> priority = compute_priorities(graph, priority_);

  // Priorities are fixed for the whole run, so the ready list is kept
  // permanently sorted (highest priority first, ties by node id) and new
  // arrivals merge in — no full re-sort per cycle.  The comparator is a
  // strict total order (ids are unique), so the per-cycle issue order is
  // identical to re-sorting from scratch.
  const auto before = [&](dfg::NodeId a, dfg::NodeId b) {
    if (priority[a] != priority[b]) return priority[a] > priority[b];
    return a < b;
  };

  std::vector<int> unresolved(n, 0);
  std::vector<int> ready_at(n, 0);  // earliest cycle dependences allow
  for (dfg::NodeId v = 0; v < n; ++v)
    unresolved[v] = static_cast<int>(graph.preds(v).size());

  std::vector<dfg::NodeId> ready;
  for (dfg::NodeId v = 0; v < n; ++v)
    if (unresolved[v] == 0) ready.push_back(v);
  std::sort(ready.begin(), ready.end(), before);

  // Deferred arrivals: nodes whose dependences resolve at a future cycle.
  std::vector<std::vector<dfg::NodeId>> arriving;

  // Merges the sorted run [mid, end) of `list` into the sorted [0, mid).
  const auto merge_tail = [&](std::vector<dfg::NodeId>& list,
                              std::size_t mid) {
    std::sort(list.begin() + static_cast<std::ptrdiff_t>(mid), list.end(),
              before);
    std::inplace_merge(list.begin(),
                       list.begin() + static_cast<std::ptrdiff_t>(mid),
                       list.end(), before);
  };

  std::size_t scheduled = 0;
  int cycle = 0;
  int makespan = 0;
  std::vector<dfg::NodeId> leftover;  // reused across cycles
  std::vector<dfg::NodeId> newly;     // successors readied for cycle + 1
  leftover.reserve(n);

  while (scheduled < n) {
    if (static_cast<std::size_t>(cycle) < arriving.size() &&
        !arriving[cycle].empty()) {
      const std::size_t mid = ready.size();
      ready.insert(ready.end(), arriving[cycle].begin(), arriving[cycle].end());
      merge_tail(ready, mid);
      arriving[cycle].clear();
    }

    CycleResources res;
    leftover.clear();
    newly.clear();
    for (const dfg::NodeId v : ready) {
      if (ready_at[v] <= cycle && fits(config_, res, graph, v)) {
        charge(res, graph, v);
        sched.slot[v] = cycle;
        ++scheduled;
        const int finish = cycle + node_latency(graph, v);
        makespan = std::max(makespan, finish);
        for (const dfg::NodeId s : graph.succs(v)) {
          ready_at[s] = std::max(ready_at[s], finish);
          if (--unresolved[s] == 0) {
            if (static_cast<std::size_t>(ready_at[s]) >= arriving.size())
              arriving.resize(static_cast<std::size_t>(ready_at[s]) + 1);
            if (ready_at[s] <= cycle + 1) {
              newly.push_back(s);
            } else {
              arriving[static_cast<std::size_t>(ready_at[s])].push_back(s);
            }
          }
        }
      } else {
        // Traversal order is sorted order, so unissued nodes land in
        // `leftover` already sorted; freshly readied successors collect in
        // `newly` and merge in below.
        leftover.push_back(v);
      }
    }
    if (!newly.empty()) {
      const std::size_t mid = leftover.size();
      leftover.insert(leftover.end(), newly.begin(), newly.end());
      merge_tail(leftover, mid);
    }
    std::swap(ready, leftover);
    ++cycle;
    ISEX_ASSERT_MSG(cycle <= static_cast<int>(n) * 64 + 64,
                    "scheduler failed to make progress");
  }

  sched.cycles = makespan;
  ISEX_ASSERT(respects_dependences(graph, sched));
  return sched;
}

}  // namespace isex::sched
