#include "sched/priority.hpp"

namespace isex::sched {

std::vector<double> compute_priorities(const dfg::Graph& graph,
                                       PriorityKind kind) {
  PriorityScratch scratch;
  compute_priorities_into(graph, kind, scratch);
  return std::move(scratch.score);
}

}  // namespace isex::sched
