#include "sched/priority.hpp"

#include <algorithm>

#include "dfg/analysis.hpp"
#include "sched/schedule.hpp"

namespace isex::sched {

std::vector<double> compute_priorities(const dfg::Graph& graph,
                                       PriorityKind kind) {
  const std::size_t n = graph.num_nodes();
  std::vector<double> score(n, 0.0);

  switch (kind) {
    case PriorityKind::kChildCount: {
      for (dfg::NodeId v = 0; v < n; ++v)
        score[v] = static_cast<double>(graph.succs(v).size());
      break;
    }
    case PriorityKind::kMobility: {
      const dfg::PathInfo path = dfg::longest_path(graph, [&](dfg::NodeId v) {
        return static_cast<double>(node_latency(graph, v));
      });
      double max_mobility = 0.0;
      for (dfg::NodeId v = 0; v < n; ++v)
        max_mobility = std::max(max_mobility, path.latest[v] - path.earliest[v]);
      for (dfg::NodeId v = 0; v < n; ++v)
        score[v] = max_mobility - (path.latest[v] - path.earliest[v]);
      break;
    }
    case PriorityKind::kDescendantCount: {
      const dfg::Reachability reach(graph);
      for (dfg::NodeId v = 0; v < n; ++v)
        score[v] = static_cast<double>(reach.descendants(v).count());
      break;
    }
  }
  return score;
}

}  // namespace isex::sched
