// Reusable SoA working state for ListScheduler evaluations.
//
// One candidate evaluation = one full list-scheduler run; a round scores
// dozens of candidates and a sweep scores millions, so the per-run working
// vectors (priorities, in-degrees, ready/arrival lists, issue slots) are
// flattened here and recycled call-to-call.  Hold one scratch per thread
// (the explorer keeps one per evaluation worker) and every run after warm-up
// performs zero heap allocations with the default child-count priority
// (mobility reuses scratch too; descendant-count grows per-node bitset rows
// on first use, then reuses them).
#pragma once

#include <vector>

#include "dfg/node_set.hpp"
#include "sched/priority.hpp"

namespace isex::sched {

struct SchedulerScratch {
  PriorityScratch priority;
  /// Unresolved-predecessor count per node.
  std::vector<int> unresolved;
  /// Earliest cycle dependences allow per node.
  std::vector<int> ready_at;
  /// Issue cycle per node (the run's output placement).
  std::vector<int> slot;
  std::vector<dfg::NodeId> ready;
  std::vector<dfg::NodeId> leftover;
  std::vector<dfg::NodeId> newly;
  /// Tail copy for the hand-rolled sorted merge (std::inplace_merge would
  /// heap-allocate a temporary buffer per call).
  std::vector<dfg::NodeId> merge_tmp;
  /// Deferred arrivals bucketed by cycle.
  std::vector<std::vector<dfg::NodeId>> arriving;
};

}  // namespace isex::sched
