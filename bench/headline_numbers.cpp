// Regenerates the abstract/conclusion headline numbers:
//   (1) one ISE vs no ISE on a multiple-issue processor —
//       paper: 17.17% / 12.9% / 14.79% (max / min / avg);
//   (2) MI vs SI under the same area constraint —
//       paper: 11.39% / 2.87% / 7.16% further reduction (max / min / avg).
// Aggregation is over the evaluated machine configurations (per-config
// average across the seven benchmarks), as in Ch. 5/6.
#include <iostream>
#include <vector>

#include "harness_common.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace isex;
  using benchx::ExploredProgram;

  const int repeats = benchx::bench_repeats();
  std::cout << "Headline numbers (best of " << repeats
            << " explorations per block, O3, avg across benchmarks per "
               "machine config)\n\n";

  std::vector<double> one_ise_reduction;   // per machine config
  std::vector<double> further_reduction;   // MI over SI at equal area

  for (const auto& machine : benchx::paper_machines()) {
    std::vector<ExploredProgram> mi;
    std::vector<ExploredProgram> si;
    for (const auto benchmark : bench_suite::all_benchmarks()) {
      mi.push_back(benchx::explore_program(
          benchmark, bench_suite::OptLevel::kO3, machine,
          flow::Algorithm::kMultiIssue, repeats, 41));
      si.push_back(benchx::explore_program(
          benchmark, bench_suite::OptLevel::kO3, machine,
          flow::Algorithm::kSingleIssue, repeats, 41));
    }

    // (1) single ISE, no area bound.
    flow::SelectionConstraints one;
    one.max_ises = 1;
    std::vector<double> reductions;
    for (const ExploredProgram& e : mi)
      reductions.push_back(benchx::evaluate(e, one, machine).reduction);
    one_ise_reduction.push_back(summarize(reductions).mean);

    // (2) equal area constraint.  MI consumes less silicon for the same
    // reduction, so "same area" means: give SI exactly the budget MI spent
    // (per benchmark) and compare execution times.
    flow::SelectionConstraints mi_constraints;
    mi_constraints.area_budget = 40000.0;
    mi_constraints.max_ises = 32;
    double mi_total = 0.0;
    double si_total = 0.0;
    for (std::size_t i = 0; i < mi.size(); ++i) {
      const auto mi_outcome = benchx::evaluate(mi[i], mi_constraints, machine);
      flow::SelectionConstraints same_area = mi_constraints;
      same_area.area_budget = mi_outcome.area;
      const auto si_outcome = benchx::evaluate(si[i], same_area, machine);
      mi_total += static_cast<double>(mi_outcome.final_time);
      si_total += static_cast<double>(si_outcome.final_time);
    }
    // Further reduction of MI over SI: 1 − t_MI / t_SI, suite-aggregated.
    further_reduction.push_back(si_total > 0 ? 1.0 - mi_total / si_total : 0.0);
  }

  const Summary one_ise = summarize(one_ise_reduction);
  const Summary further = summarize(further_reduction);

  TablePrinter table;
  table.set_header({"metric", "max", "min", "avg", "paper max", "paper min",
                    "paper avg"});
  table.add_row({"1 ISE vs no ISE", TablePrinter::pct(one_ise.max),
                 TablePrinter::pct(one_ise.min), TablePrinter::pct(one_ise.mean),
                 "17.17%", "12.90%", "14.79%"});
  table.add_row({"MI vs SI @ equal area", TablePrinter::pct(further.max),
                 TablePrinter::pct(further.min), TablePrinter::pct(further.mean),
                 "11.39%", "2.87%", "7.16%"});
  table.print(std::cout);
  std::cout << "\nAbsolute numbers depend on the modelled kernels; the shape "
               "to check: 1-ISE avg in the 10-20% band, MI > SI on average.\n";
  return 0;
}
