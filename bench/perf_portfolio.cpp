// Portfolio-exploration bench: the 7-benchmark O3 suite explored as ONE
// batched portfolio (run_portfolio_flow) versus back-to-back independent
// design flows — the workload a multi-application ASIP commission is.
// Results land in BENCH_portfolio.json.
//
// The reference model is N independent CLI invocations: each program runs
// run_design_flow in its own cold-cache world (the process cache is cleared
// between programs), because that is what "explore each program separately"
// costs in practice.  The portfolio side starts equally cold: one private
// portfolio-scoped eval cache, empty at launch.
//
// Gates (exit status 1 on failure):
//   * identity — for every program, the portfolio's per-program exploration
//     results (hot blocks + every explored ISE) must be bit-identical to an
//     independent run_design_flow at the same seed.  Always enforced: the
//     batched schedule and the shared cache are pure plumbing, never allowed
//     to change a result.
//   * dedup — the portfolio-scoped eval-cache hit rate over the 7-kernel
//     manifest must reach ISEX_BENCH_PORTFOLIO_DEDUP_FLOOR (default 20%):
//     candidate evaluations repeating across repeats, rounds, and programs
//     are found, not recomputed.
//   * speedup — the portfolio must beat back-to-back flows by
//     ISEX_BENCH_PORTFOLIO_FLOOR (default 1.3x) at jobs=8.  Enforced only
//     when the host grants >= 4 cores; smaller hosts stamp the measured
//     ratio with "scaling_valid": false and do not gate.
//
// `--quick` drops to one timing repeat and 2 exploration repeats for CI
// smoke runs; the identity and dedup checks run either way.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/kernels.hpp"
#include "flow/portfolio.hpp"
#include "harness_common.hpp"
#include "runtime/eval_cache.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace isex;

int timing_repeats(bool quick) {
  if (const char* env = std::getenv("ISEX_BENCH_TIMING_REPEATS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return quick ? 1 : 3;
}

double speedup_floor() {
  if (const char* env = std::getenv("ISEX_BENCH_PORTFOLIO_FLOOR")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 1.3;
}

double dedup_hit_rate_floor() {
  if (const char* env = std::getenv("ISEX_BENCH_PORTFOLIO_DEDUP_FLOOR")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 0.20;
}

/// FNV-1a over every observable field of an ExplorationResult (mirrors the
/// golden-hash regression tests): any divergence between the portfolio's
/// per-program explorations and an independent flow's flips it.
struct Fnv1a {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (i * 8)) & 0xffu;
      hash *= 0x100000001b3ULL;
    }
  }
  void mix_int(long long v) { mix(static_cast<std::uint64_t>(v)); }
  void mix_double(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
};

std::uint64_t hash_explorations(
    const std::vector<std::size_t>& hot_blocks,
    const std::vector<core::ExplorationResult>& explorations) {
  Fnv1a h;
  h.mix_int(static_cast<long long>(hot_blocks.size()));
  for (const std::size_t b : hot_blocks) h.mix(b);
  for (const core::ExplorationResult& r : explorations) {
    h.mix_int(r.base_cycles);
    h.mix_int(r.final_cycles);
    h.mix_int(r.rounds);
    h.mix_int(r.total_iterations);
    h.mix_int(static_cast<long long>(r.ises.size()));
    for (const core::ExploredIse& ise : r.ises) {
      h.mix_int(ise.in_count);
      h.mix_int(ise.out_count);
      h.mix_int(ise.gain_cycles);
      h.mix_int(ise.eval.latency_cycles);
      h.mix_double(ise.eval.area);
      h.mix_double(ise.eval.depth_ns);
      ise.original_nodes.for_each([&](dfg::NodeId m) { h.mix_int(m); });
    }
  }
  return h.hash;
}

flow::FlowConfig base_config(bool quick) {
  flow::FlowConfig config;
  config.machine = sched::MachineConfig::make(2, {6, 3});
  config.repeats = quick ? 2 : 5;
  config.seed = 17;
  config.jobs = 8;
  return config;
}

std::vector<flow::PortfolioEntry> make_manifest() {
  std::vector<flow::PortfolioEntry> entries;
  std::size_t i = 0;
  for (const bench_suite::Benchmark bm : bench_suite::all_benchmarks()) {
    flow::PortfolioEntry entry;
    entry.program = bench_suite::make_program(bm, bench_suite::OptLevel::kO3);
    // Varied execution-frequency weights so the weighted shared selection
    // actually reorders the merged catalog.
    entry.weight = 1.0 + static_cast<double>(i % 3);
    entries.push_back(std::move(entry));
    ++i;
  }
  return entries;
}

struct TimedRun {
  std::vector<double> seconds_each;
  double seconds_min() const {
    return *std::min_element(seconds_each.begin(), seconds_each.end());
  }
  double seconds_median() const {
    std::vector<double> s = seconds_each;
    std::sort(s.begin(), s.end());
    const std::size_t n = s.size();
    return n % 2 == 1 ? s[n / 2] : 0.5 * (s[n / 2 - 1] + s[n / 2]);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const unsigned hardware = std::thread::hardware_concurrency();
  const int repeats = timing_repeats(quick);
  const double floor = speedup_floor();
  const bool scaling_valid = hardware >= 4;
  std::printf("perf_portfolio: 7-benchmark O3 manifest, batched portfolio vs "
              "back-to-back independent flows%s\n", quick ? " [quick]" : "");
  std::printf("hardware_concurrency: %u, timing_repeats: %d, "
              "speedup floor: %.2fx (%s)\n\n",
              hardware, repeats, floor,
              scaling_valid ? "enforced" : "not enforced, < 4 cores");

  const hw::HwLibrary library = hw::HwLibrary::paper_default();
  const std::vector<flow::PortfolioEntry> entries = make_manifest();
  const flow::FlowConfig base = base_config(quick);

  // --- Portfolio runs (cold private cache each time; first run also
  // supplies the identity/dedup artifacts).
  flow::PortfolioConfig portfolio_config;
  portfolio_config.base = base;
  flow::PortfolioResult portfolio_result;
  TimedRun portfolio_timing;
  for (int r = 0; r < repeats; ++r) {
    runtime::schedule_cache().clear();  // keep the global cache out of play
    const auto start = std::chrono::steady_clock::now();
    flow::PortfolioResult result =
        flow::run_portfolio_flow(entries, library, portfolio_config);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    portfolio_timing.seconds_each.push_back(
        std::chrono::duration<double>(elapsed).count());
    if (r == 0) portfolio_result = std::move(result);
  }

  // --- Reference: back-to-back independent flows, cold cache per program
  // (the N-separate-invocations world the portfolio replaces).
  flow::FlowConfig independent = base;
  independent.keep_explorations = true;
  std::vector<flow::FlowResult> reference;
  TimedRun independent_timing;
  for (int r = 0; r < repeats; ++r) {
    std::vector<flow::FlowResult> results;
    const auto start = std::chrono::steady_clock::now();
    for (const flow::PortfolioEntry& entry : entries) {
      runtime::schedule_cache().clear();
      results.push_back(
          flow::run_design_flow(entry.program, library, independent));
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    independent_timing.seconds_each.push_back(
        std::chrono::duration<double>(elapsed).count());
    if (r == 0) reference = std::move(results);
  }
  runtime::schedule_cache().clear();

  // Gate 1: per-program bit identity against the independent flows.
  bool identity_ok = true;
  std::vector<std::uint64_t> digests;
  for (std::size_t p = 0; p < entries.size(); ++p) {
    const std::uint64_t batched = hash_explorations(
        portfolio_result.programs[p].hot_blocks,
        portfolio_result.programs[p].explorations);
    const std::uint64_t alone =
        hash_explorations(reference[p].hot_blocks, reference[p].explorations);
    digests.push_back(batched);
    if (batched != alone) {
      identity_ok = false;
      std::fprintf(stderr,
                   "IDENTITY VIOLATION: program '%s' portfolio exploration "
                   "digest %016llx != independent %016llx\n",
                   portfolio_result.programs[p].name.c_str(),
                   static_cast<unsigned long long>(batched),
                   static_cast<unsigned long long>(alone));
    }
  }

  // Gate 2: portfolio-wide evaluation dedup.
  const double dedup_hit_rate = portfolio_result.eval_cache_stats.hit_rate();
  const double dedup_floor = dedup_hit_rate_floor();
  const bool dedup_ok = dedup_hit_rate >= dedup_floor;

  // Gate 3: wall-clock vs back-to-back (enforced on >= 4 cores only).
  const double headline =
      independent_timing.seconds_min() / portfolio_timing.seconds_min();

  std::printf("portfolio    min %7.3f s  median %7.3f s\n",
              portfolio_timing.seconds_min(),
              portfolio_timing.seconds_median());
  std::printf("independent  min %7.3f s  median %7.3f s\n",
              independent_timing.seconds_min(),
              independent_timing.seconds_median());
  std::printf("\nidentity (portfolio == independent per program): %s\n",
              identity_ok ? "yes" : "NO — BUG");
  std::printf("dedup hit-rate: %.1f%% (%llu hits / %llu misses; floor %.0f%%)"
              "\n",
              100.0 * dedup_hit_rate,
              static_cast<unsigned long long>(
                  portfolio_result.eval_cache_stats.hits),
              static_cast<unsigned long long>(
                  portfolio_result.eval_cache_stats.misses),
              100.0 * dedup_floor);
  std::printf("jobs: %llu total, %llu deduped; isomorphic: %llu hot blocks, "
              "%llu candidates\n",
              static_cast<unsigned long long>(portfolio_result.total_jobs),
              static_cast<unsigned long long>(portfolio_result.deduped_jobs),
              static_cast<unsigned long long>(
                  portfolio_result.isomorphic_hot_blocks),
              static_cast<unsigned long long>(
                  portfolio_result.isomorphic_candidates));
  std::printf("headline: portfolio vs back-to-back = %.2fx (floor %.2fx, %s)"
              "\n",
              headline, floor,
              scaling_valid ? "enforced" : "informational");

  FILE* json = std::fopen("BENCH_portfolio.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_portfolio.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"portfolio\",\n");
  std::fprintf(json, "  \"sweep\": \"7bench_O3_MI_6_3_2IS_weighted\",\n");
  std::fprintf(json, "  \"hardware_concurrency\": %u,\n", hardware);
  std::fprintf(json, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(json, "  \"timing_repeats\": %d,\n", repeats);
  std::fprintf(json, "  \"explore_repeats\": %d,\n", base.repeats);
  std::fprintf(json, "  \"jobs\": %d,\n", base.jobs);
  std::fprintf(json, "  \"identity_ok\": %s,\n", identity_ok ? "true" : "false");
  std::fprintf(json, "  \"dedup_hit_rate\": %.4f,\n", dedup_hit_rate);
  std::fprintf(json, "  \"dedup_floor\": %.2f,\n", dedup_floor);
  std::fprintf(json, "  \"dedup_ok\": %s,\n", dedup_ok ? "true" : "false");
  std::fprintf(json, "  \"total_jobs\": %llu,\n",
               static_cast<unsigned long long>(portfolio_result.total_jobs));
  std::fprintf(json, "  \"deduped_jobs\": %llu,\n",
               static_cast<unsigned long long>(portfolio_result.deduped_jobs));
  std::fprintf(json, "  \"isomorphic_hot_blocks\": %llu,\n",
               static_cast<unsigned long long>(
                   portfolio_result.isomorphic_hot_blocks));
  std::fprintf(json, "  \"isomorphic_candidates\": %llu,\n",
               static_cast<unsigned long long>(
                   portfolio_result.isomorphic_candidates));
  std::fprintf(json, "  \"speedup_floor\": %.2f,\n", floor);
  std::fprintf(json, "  \"scaling_valid\": %s,\n",
               scaling_valid ? "true" : "false");
  std::fprintf(json, "  \"headline_speedup\": %.3f,\n", headline);
  std::fprintf(json, "  \"portfolio_seconds_each\": [");
  for (std::size_t r = 0; r < portfolio_timing.seconds_each.size(); ++r)
    std::fprintf(json, "%s%.4f", r > 0 ? ", " : "",
                 portfolio_timing.seconds_each[r]);
  std::fprintf(json, "],\n  \"independent_seconds_each\": [");
  for (std::size_t r = 0; r < independent_timing.seconds_each.size(); ++r)
    std::fprintf(json, "%s%.4f", r > 0 ? ", " : "",
                 independent_timing.seconds_each[r]);
  std::fprintf(json, "],\n  \"programs\": [\n");
  for (std::size_t p = 0; p < portfolio_result.programs.size(); ++p) {
    const flow::PortfolioProgramResult& prog = portfolio_result.programs[p];
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"weight\": %.2f, "
                 "\"base_time\": %llu, \"final_time\": %llu, "
                 "\"num_ises\": %zu, \"weighted_benefit\": %.1f, "
                 "\"digest\": \"%016llx\"}%s\n",
                 prog.name.c_str(), prog.weight,
                 static_cast<unsigned long long>(prog.base_time()),
                 static_cast<unsigned long long>(prog.final_time()),
                 prog.selection.selected.size(), prog.weighted_benefit(),
                 static_cast<unsigned long long>(digests[p]),
                 p + 1 < portfolio_result.programs.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"selected_ises\": %zu,\n",
               portfolio_result.selection.selected.size());
  std::fprintf(json, "  \"selected_types\": %d,\n",
               portfolio_result.num_ise_types());
  std::fprintf(json, "  \"total_area\": %.3f\n",
               portfolio_result.total_area());
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote BENCH_portfolio.json\n");

  if (!identity_ok) return 1;
  if (!dedup_ok) {
    std::fprintf(stderr, "DEDUP GATE FAILED: %.1f%% < %.0f%% floor\n",
                 100.0 * dedup_hit_rate, 100.0 * dedup_floor);
    return 1;
  }
  if (scaling_valid && headline < floor) {
    std::fprintf(stderr, "SPEEDUP GATE FAILED: %.2fx < %.2fx floor\n",
                 headline, floor);
    return 1;
  }
  return 0;
}
