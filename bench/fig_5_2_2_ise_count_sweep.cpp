// Regenerates Figure 5.2.2: average execution-time reduction for different
// numbers of ISEs (1, 2, 4, 8, 16, 32), unconstrained area.
//
// Bars as in Fig 5.2.1: {MI, SI} × six machines × {O0, O3}, averaged over
// the seven benchmarks.
#include <iostream>
#include <vector>

#include "harness_common.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace isex;
  using benchx::ExploredProgram;

  const std::vector<int> kCounts = {1, 2, 4, 8, 16, 32};
  const int repeats = benchx::bench_repeats();

  std::cout << "Figure 5.2.2: execution time reduction for different "
               "number of ISEs\n"
            << "(avg over 7 benchmarks, best of " << repeats
            << " explorations per block)\n\n";

  TablePrinter table;
  {
    std::vector<std::string> header = {"config"};
    for (const int n : kCounts) header.push_back(std::to_string(n) + " ISE");
    table.set_header(header);
  }

  for (const auto algorithm :
       {flow::Algorithm::kMultiIssue, flow::Algorithm::kSingleIssue}) {
    for (const auto& machine : benchx::paper_machines()) {
      for (const auto level :
           {bench_suite::OptLevel::kO0, bench_suite::OptLevel::kO3}) {
        const std::vector<ExploredProgram> explored =
            benchx::explore_programs(bench_suite::all_benchmarks(), level,
                                     machine, algorithm, repeats, /*seed=*/23);
        std::vector<std::string> row = {
            std::string(benchx::algorithm_tag(algorithm)) + machine.label() +
            ", " + std::string(bench_suite::name(level))};
        for (const int count : kCounts) {
          flow::SelectionConstraints constraints;
          constraints.max_ises = count;
          std::vector<double> reductions;
          for (const ExploredProgram& e : explored)
            reductions.push_back(
                benchx::evaluate(e, constraints, machine).reduction);
          row.push_back(TablePrinter::pct(summarize(reductions).mean));
        }
        table.add_row(row);
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shapes: MI >= SI per row; the first ISE buys most "
               "of the reduction (compare with Fig 5.2.3).\n";
  benchx::print_runtime_stats(std::cout);
  return 0;
}
