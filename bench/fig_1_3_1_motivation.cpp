// Regenerates Figure 1.3.1's argument: on a dependence-bound DFG,
// (a) widening issue alone hits the dependence wall,
// (b) an ISE cuts through it,
// (c) exploring ISEs *for* the wide machine beats reusing the single-issue
//     exploration result (§1.4's case-1 vs case-2 comparison).
#include <iostream>

#include "baseline/si_explorer.hpp"
#include "core/mi_explorer.hpp"
#include "flow/program.hpp"
#include "flow/replacement.hpp"
#include "flow/selection.hpp"
#include "isa/tac_parser.hpp"
#include "sched/list_scheduler.hpp"
#include "util/table_printer.hpp"

namespace {

// A dependence-chain DFG with plenty of side parallelism, in the spirit of
// the introduction's example: the t-chain is the 2-issue critical path; the
// u/v side chains fit into its slack on a 2-issue machine, so packing them
// into ISEs only wastes area there — yet a sequential (single-issue) view
// sees them as profitable.
constexpr const char* kExample = R"(
  t1 = addu a, b
  t2 = xor t1, c
  t3 = and t2, d
  t4 = srl t3, 2
  u1 = addu e, f
  u2 = or u1, g
  u3 = and u2, p
  v1 = subu h, k
  v2 = xor v1, q
  v3 = or v2, s
  t5 = addu t4, u3
  t6 = xor t5, v3
  live_out t6
)";

int deploy_cycles(const isex::dfg::Graph& block,
                  const isex::core::ExplorationResult& explored,
                  const isex::sched::MachineConfig& machine) {
  using namespace isex;
  // Collapse the explored ISEs into the block and schedule on `machine`.
  dfg::Graph current = block;
  std::vector<dfg::NodeId> to_current(block.num_nodes());
  for (dfg::NodeId v = 0; v < block.num_nodes(); ++v) to_current[v] = v;
  for (const auto& ise : explored.ises) {
    dfg::NodeSet members(current.num_nodes());
    ise.original_nodes.for_each(
        [&](dfg::NodeId v) { members.insert(to_current[v]); });
    dfg::IseInfo info;
    info.latency_cycles = ise.eval.latency_cycles;
    info.area = ise.eval.area;
    info.num_inputs = ise.in_count;
    info.num_outputs = ise.out_count;
    std::vector<dfg::NodeId> remap;
    current = current.collapse(members, info, &remap);
    for (dfg::NodeId v = 0; v < block.num_nodes(); ++v)
      to_current[v] = remap[to_current[v]];
  }
  return sched::ListScheduler(machine).cycles(current);
}

}  // namespace

int main() {
  using namespace isex;

  const isa::ParsedBlock block = isa::parse_tac(kExample);
  const hw::HwLibrary lib = hw::HwLibrary::paper_default();

  const auto one_issue = sched::MachineConfig::make(1, {4, 2});
  const auto two_issue = sched::MachineConfig::make(2, {6, 3});

  std::cout << "Figure 1.3.1: ISE exploring results for different "
               "architectures (12-op example DFG)\n\n";

  TablePrinter table;
  table.set_header({"architecture", "cycles", "ASFU area (um^2)"});
  table.add_row({"single-issue, no ISE",
                 std::to_string(sched::ListScheduler(one_issue).cycles(block.graph)),
                 "0"});
  table.add_row({"2-issue, no ISE",
                 std::to_string(sched::ListScheduler(two_issue).cycles(block.graph)),
                 "0"});

  // Single-issue exploration, deployed on 1-issue and (case 1) on 2-issue.
  isa::IsaFormat format;
  format.reg_file = two_issue.reg_file;
  const baseline::SingleIssueExplorer si(format, lib);
  Rng rng_si(11);
  const auto si_result = si.explore_best_of(block.graph, 5, rng_si);
  table.add_row({"single-issue with ISE",
                 std::to_string(si_result.final_cycles),
                 TablePrinter::fmt(si_result.total_area(), 1)});
  table.add_row({"case 1: SI exploration on 2-issue",
                 std::to_string(deploy_cycles(block.graph, si_result, two_issue)),
                 TablePrinter::fmt(si_result.total_area(), 1)});

  // Multi-issue exploration (case 2).
  const core::MultiIssueExplorer mi(two_issue, format, lib);
  Rng rng_mi(11);
  const auto mi_result = mi.explore_best_of(block.graph, 5, rng_mi);
  table.add_row({"case 2: MI exploration on 2-issue",
                 std::to_string(mi_result.final_cycles),
                 TablePrinter::fmt(mi_result.total_area(), 1)});

  table.print(std::cout);
  std::cout << "\nExpected shape: case 2 needs no more cycles than case 1 "
               "and no more area.\n";
  return 0;
}
