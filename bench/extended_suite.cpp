// Extension bench: the design flow on the post-paper kernel set (AES
// GF(2^8), SHA-256 message schedule, Sobel) — MI vs SI at a 40 k µm²
// budget on the 2-issue machine, both flavors.
#include <iostream>

#include "bench_suite/extended.hpp"
#include "flow/design_flow.hpp"
#include "harness_common.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace isex;

  const int repeats = benchx::bench_repeats();
  flow::FlowConfig config;
  config.machine = sched::MachineConfig::make(2, {6, 3});
  config.constraints.area_budget = 40000.0;
  config.repeats = repeats;
  config.seed = 83;
  const hw::HwLibrary library = hw::HwLibrary::paper_default();

  std::cout << "Extended kernel suite (machine " << config.machine.label()
            << ", 40000 um^2, best of " << repeats << ")\n\n";

  TablePrinter table;
  table.set_header({"benchmark", "opt", "MI red.", "MI area", "SI red.",
                    "SI area"});
  for (const auto benchmark : bench_suite::all_extra_benchmarks()) {
    for (const auto level :
         {bench_suite::OptLevel::kO0, bench_suite::OptLevel::kO3}) {
      const auto program = bench_suite::make_extra_program(benchmark, level);
      config.algorithm = flow::Algorithm::kMultiIssue;
      const auto mi = run_design_flow(program, library, config);
      config.algorithm = flow::Algorithm::kSingleIssue;
      const auto si = run_design_flow(program, library, config);
      table.add_row({std::string(bench_suite::name(benchmark)),
                     std::string(bench_suite::name(level)),
                     TablePrinter::pct(mi.reduction()),
                     TablePrinter::fmt(mi.total_area(), 0),
                     TablePrinter::pct(si.reduction()),
                     TablePrinter::fmt(si.total_area(), 0)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: same qualitative behaviour as the paper "
               "suite — MI matches or beats SI at equal or lower area; the "
               "shift/xor networks (AES, SHA) compress hardest.\n";
  return 0;
}
