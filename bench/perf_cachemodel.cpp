// Memory-hierarchy cost-model bench: the 7-benchmark O3 suite explored
// through run_design_flow with the two-level cache model on and off
// (docs/MEMORY.md).  Results land in BENCH_cachemodel.json.
//
// Gates (exit status 1 on failure):
//   * null identity — the null model (FlowConfig::cache unset) must produce
//     the same per-program exploration digests before and after any cache-
//     modeled run in the process: annotation happens on copies and leaves no
//     residue.  (The legacy digests themselves are pinned by the tier-1
//     golden-hash tests; this gate proves the plumbing is inert when off.)
//   * jobs identity — with the cache model on, jobs=1 and jobs=8 must be
//     bit-identical per program: annotation is a pure function of
//     (graph, config), never of scheduling order or thread count.
//   * effect — at least one program's exploration digest must differ
//     between the null model and the cache model: the simulated latencies
//     actually reach the merit function.
//   * overhead — the cache-modeled flow may cost at most
//     ISEX_BENCH_CACHEMODEL_OVERHEAD_CEILING (default 1.15x) of the null
//     flow at jobs=8, min over timing repeats.
//
// `--quick` drops to one timing repeat and 2 exploration repeats for CI
// smoke runs; every identity gate runs either way.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_suite/kernels.hpp"
#include "flow/design_flow.hpp"
#include "harness_common.hpp"
#include "mem/cache_model.hpp"
#include "runtime/eval_cache.hpp"

namespace {

using namespace isex;

int timing_repeats(bool quick) {
  if (const char* env = std::getenv("ISEX_BENCH_TIMING_REPEATS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return quick ? 1 : 3;
}

double overhead_ceiling() {
  if (const char* env =
          std::getenv("ISEX_BENCH_CACHEMODEL_OVERHEAD_CEILING")) {
    const double v = std::atof(env);
    if (v > 1.0) return v;
  }
  return 1.15;
}

/// FNV-1a over every observable exploration field (mirrors the golden-hash
/// regression tests): any behavioural divergence flips it.
struct Fnv1a {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (i * 8)) & 0xffu;
      hash *= 0x100000001b3ULL;
    }
  }
  void mix_int(long long v) { mix(static_cast<std::uint64_t>(v)); }
  void mix_double(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
};

std::uint64_t hash_flow(const flow::FlowResult& result) {
  Fnv1a h;
  h.mix_int(static_cast<long long>(result.hot_blocks.size()));
  for (const std::size_t b : result.hot_blocks) h.mix(b);
  for (const core::ExplorationResult& r : result.explorations) {
    h.mix_int(r.base_cycles);
    h.mix_int(r.final_cycles);
    h.mix_int(r.rounds);
    h.mix_int(r.total_iterations);
    h.mix_int(static_cast<long long>(r.ises.size()));
    for (const core::ExploredIse& ise : r.ises) {
      h.mix_int(ise.in_count);
      h.mix_int(ise.out_count);
      h.mix_int(ise.gain_cycles);
      h.mix_int(ise.eval.latency_cycles);
      h.mix_double(ise.eval.area);
      h.mix_double(ise.eval.depth_ns);
      ise.original_nodes.for_each([&](dfg::NodeId m) { h.mix_int(m); });
    }
  }
  h.mix_int(static_cast<long long>(result.replacement.base_time));
  h.mix_int(static_cast<long long>(result.replacement.final_time));
  return h.hash;
}

struct SuiteRun {
  std::vector<std::uint64_t> digests;
  mem::CacheStats cache_stats;
  double seconds = 0.0;
};

SuiteRun run_suite(const std::vector<flow::ProfiledProgram>& programs,
                   const hw::HwLibrary& library,
                   const flow::FlowConfig& config) {
  SuiteRun run;
  const auto start = std::chrono::steady_clock::now();
  for (const flow::ProfiledProgram& program : programs) {
    runtime::schedule_cache().clear();  // cold per program, like the CLI
    const flow::FlowResult result =
        flow::run_design_flow(program, library, config);
    run.digests.push_back(hash_flow(result));
    run.cache_stats.merge(result.cache_stats);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  run.seconds = std::chrono::duration<double>(elapsed).count();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const int repeats = timing_repeats(quick);
  const double ceiling = overhead_ceiling();
  std::printf("perf_cachemodel: 7-benchmark O3 suite, cache model on vs off"
              "%s\n",
              quick ? " [quick]" : "");
  std::printf("timing_repeats: %d, overhead ceiling: %.2fx\n\n", repeats,
              ceiling);

  const hw::HwLibrary library = hw::HwLibrary::paper_default();
  std::vector<flow::ProfiledProgram> programs;
  for (const bench_suite::Benchmark bm : bench_suite::all_benchmarks())
    programs.push_back(
        bench_suite::make_program(bm, bench_suite::OptLevel::kO3));

  flow::FlowConfig null_config;
  null_config.machine = sched::MachineConfig::make(2, {6, 3});
  null_config.repeats = quick ? 2 : 5;
  null_config.seed = 17;
  null_config.jobs = 8;
  null_config.keep_explorations = true;

  flow::FlowConfig cache_config = null_config;
  cache_config.cache =
      *mem::parse_cache_config("l1_size=1k,l1_ways=2,l1_line=16,"
                               "l2_size=16k,l2_ways=4,l2_line=32,"
                               "l2_hit=6,mem=40");

  // --- Baseline null-model digests (first cache-model-free pass).
  const SuiteRun null_before = run_suite(programs, library, null_config);

  // --- Cache-modeled runs: jobs=8 (timed) and jobs=1 (identity witness).
  SuiteRun cached;
  std::vector<double> cached_seconds;
  for (int r = 0; r < repeats; ++r) {
    SuiteRun run = run_suite(programs, library, cache_config);
    cached_seconds.push_back(run.seconds);
    if (r == 0) cached = std::move(run);
  }
  flow::FlowConfig serial = cache_config;
  serial.jobs = 1;
  const SuiteRun cached_serial = run_suite(programs, library, serial);

  // --- Null-model timing repeats, after the cache-modeled runs so the
  // second digest pass doubles as the no-residue check.
  SuiteRun null_after;
  std::vector<double> null_seconds;
  for (int r = 0; r < repeats; ++r) {
    SuiteRun run = run_suite(programs, library, null_config);
    null_seconds.push_back(run.seconds);
    if (r == 0) null_after = std::move(run);
  }

  // Gate 1: the null model is unchanged by cache-model code having run.
  bool null_identity = null_before.digests == null_after.digests;
  if (!null_identity)
    std::fprintf(stderr, "NULL-MODEL IDENTITY VIOLATION: digests drifted "
                         "after cache-modeled runs\n");

  // Gate 2: cache-modeled results are thread-count independent.
  bool jobs_identity = cached.digests == cached_serial.digests;
  for (std::size_t p = 0; p < programs.size(); ++p) {
    if (cached.digests[p] != cached_serial.digests[p])
      std::fprintf(stderr,
                   "JOBS IDENTITY VIOLATION: program '%s' jobs=8 digest "
                   "%016llx != jobs=1 %016llx\n",
                   programs[p].name.c_str(),
                   static_cast<unsigned long long>(cached.digests[p]),
                   static_cast<unsigned long long>(cached_serial.digests[p]));
  }

  // Gate 3: the model has an effect on at least one program.
  int changed_programs = 0;
  for (std::size_t p = 0; p < programs.size(); ++p)
    if (cached.digests[p] != null_before.digests[p]) ++changed_programs;
  const bool effect_ok = changed_programs > 0;
  if (!effect_ok)
    std::fprintf(stderr, "EFFECT GATE FAILED: cache model changed no "
                         "program's exploration\n");

  // Gate 4: overhead ceiling (min over repeats on both sides).
  const double null_min =
      *std::min_element(null_seconds.begin(), null_seconds.end());
  const double cached_min =
      *std::min_element(cached_seconds.begin(), cached_seconds.end());
  const double overhead = null_min > 0.0 ? cached_min / null_min : 1.0;
  const bool overhead_ok = overhead <= ceiling;

  const bool identity_ok = null_identity && jobs_identity;
  std::printf("null model    min %7.3f s\n", null_min);
  std::printf("cache model   min %7.3f s\n", cached_min);
  std::printf("overhead: %.3fx (ceiling %.2fx)\n", overhead, ceiling);
  std::printf("identity: null %s, jobs %s; %d/%zu programs changed by the "
              "model\n",
              null_identity ? "yes" : "NO — BUG",
              jobs_identity ? "yes" : "NO — BUG", changed_programs,
              programs.size());
  std::printf("cache telemetry: %llu accesses, %.1f%% L1 hit rate, "
              "%llu annotated nodes\n",
              static_cast<unsigned long long>(cached.cache_stats.accesses),
              100.0 * cached.cache_stats.l1_hit_rate(),
              static_cast<unsigned long long>(
                  cached.cache_stats.annotated_nodes));

  FILE* json = std::fopen("BENCH_cachemodel.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_cachemodel.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"cachemodel\",\n");
  std::fprintf(json, "  \"sweep\": \"7bench_O3_MI_6_3_2IS_cache\",\n");
  std::fprintf(json, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(json, "  \"timing_repeats\": %d,\n", repeats);
  std::fprintf(json, "  \"explore_repeats\": %d,\n", null_config.repeats);
  std::fprintf(json, "  \"jobs\": %d,\n", null_config.jobs);
  std::fprintf(json, "  \"cache_config\": \"%s\",\n",
               cache_config.cache->label().c_str());
  std::fprintf(json, "  \"identity_ok\": %s,\n",
               identity_ok ? "true" : "false");
  std::fprintf(json, "  \"null_identity\": %s,\n",
               null_identity ? "true" : "false");
  std::fprintf(json, "  \"jobs_identity\": %s,\n",
               jobs_identity ? "true" : "false");
  std::fprintf(json, "  \"changed_programs\": %d,\n", changed_programs);
  std::fprintf(json, "  \"effect_ok\": %s,\n", effect_ok ? "true" : "false");
  std::fprintf(json, "  \"overhead\": %.4f,\n", overhead);
  std::fprintf(json, "  \"overhead_ceiling\": %.2f,\n", ceiling);
  std::fprintf(json, "  \"overhead_ok\": %s,\n",
               overhead_ok ? "true" : "false");
  std::fprintf(json, "  \"l1_hit_rate\": %.4f,\n",
               cached.cache_stats.l1_hit_rate());
  std::fprintf(json, "  \"accesses\": %llu,\n",
               static_cast<unsigned long long>(cached.cache_stats.accesses));
  std::fprintf(json, "  \"annotated_nodes\": %llu,\n",
               static_cast<unsigned long long>(
                   cached.cache_stats.annotated_nodes));
  std::fprintf(json, "  \"null_seconds_each\": [");
  for (std::size_t r = 0; r < null_seconds.size(); ++r)
    std::fprintf(json, "%s%.4f", r > 0 ? ", " : "", null_seconds[r]);
  std::fprintf(json, "],\n  \"cache_seconds_each\": [");
  for (std::size_t r = 0; r < cached_seconds.size(); ++r)
    std::fprintf(json, "%s%.4f", r > 0 ? ", " : "", cached_seconds[r]);
  std::fprintf(json, "],\n  \"programs\": [\n");
  for (std::size_t p = 0; p < programs.size(); ++p) {
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"null_digest\": \"%016llx\", "
                 "\"cache_digest\": \"%016llx\", \"changed\": %s}%s\n",
                 programs[p].name.c_str(),
                 static_cast<unsigned long long>(null_before.digests[p]),
                 static_cast<unsigned long long>(cached.digests[p]),
                 cached.digests[p] != null_before.digests[p] ? "true"
                                                             : "false",
                 p + 1 < programs.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_cachemodel.json\n");

  if (!identity_ok) return 1;
  if (!effect_ok) return 1;
  if (!overhead_ok) {
    std::fprintf(stderr, "OVERHEAD GATE FAILED: %.3fx > %.2fx ceiling\n",
                 overhead, ceiling);
    return 1;
  }
  return 0;
}
