// §2.1's scalability argument, measured: exhaustive candidate enumeration
// (Pozzi-style) vs the ACO explorer over growing DFG sizes.  The exact
// method's visited-subgraph count explodes combinatorially (it is capped to
// stay runnable) while the ACO iteration count stays flat — the reason
// heuristics exist in this problem space — and on blocks small enough for
// exact search, the heuristic's schedule quality matches it.
#include <chrono>
#include <iostream>

#include "baseline/exact_enumerator.hpp"
#include "core/mi_explorer.hpp"
#include "random_dag.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace isex;
  using Clock = std::chrono::steady_clock;

  const auto machine = sched::MachineConfig::make(2, {6, 3});
  isa::IsaFormat fmt{{6, 3}};
  const hw::HwLibrary lib = hw::HwLibrary::paper_default();

  baseline::ExactParams exact_params;
  exact_params.max_subgraphs = 300000;
  const baseline::ExactExplorer exact(machine, fmt, lib, exact_params);
  const core::MultiIssueExplorer aco(machine, fmt, lib);

  std::cout << "Exact enumeration vs ACO exploration (machine "
            << machine.label() << ")\n\n";

  TablePrinter table;
  table.set_header({"DFG size", "exact cycles", "ACO cycles", "exact subgraphs",
                    "ACO iterations", "exact ms", "ACO ms", "truncated"});

  for (const std::size_t n : {10u, 14u, 18u, 24u, 32u, 48u}) {
    Rng graph_rng(1000 + n);
    const dfg::Graph g = benchx::random_dag(n, graph_rng, 0.5);

    const auto t0 = Clock::now();
    const auto exact_result = exact.explore(g);
    const auto t1 = Clock::now();
    Rng rng(5);
    const auto aco_result = aco.explore_best_of(g, 5, rng);
    const auto t2 = Clock::now();

    const auto ms = [](auto d) {
      return std::chrono::duration<double, std::milli>(d).count();
    };
    // Re-derive the enumeration volume for reporting.
    hw::GPlus gplus(g, lib);
    const auto enumerated =
        baseline::enumerate_candidates(gplus, fmt, exact_params);
    table.add_row({std::to_string(n), std::to_string(exact_result.final_cycles),
                   std::to_string(aco_result.final_cycles),
                   std::to_string(enumerated.subgraphs_visited),
                   std::to_string(aco_result.total_iterations),
                   TablePrinter::fmt(ms(t1 - t0), 1),
                   TablePrinter::fmt(ms(t2 - t1), 1),
                   enumerated.truncated ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "\nExpected shapes: exact subgraph count explodes with size "
               "(truncation kicks in) while ACO iterations stay flat; cycle "
               "counts land in the same band (both commit greedily round by "
               "round, so neither strictly dominates).\n";
  return 0;
}
