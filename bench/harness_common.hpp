// Shared machinery for the figure-regeneration harnesses.
//
// Exploration is by far the expensive step and is independent of the
// selection constraints (area budget / #ISEs), so each harness explores a
// (benchmark, flavor, machine, algorithm) combination once and replays
// selection + replacement per constraint point — exactly how the paper
// sweeps Figs 5.2.1–5.2.3 from one set of explored candidates.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bench_suite/kernels.hpp"
#include "flow/design_flow.hpp"

namespace isex::benchx {

/// The six machine configurations of §5.1.
std::vector<sched::MachineConfig> paper_machines();

/// Candidates explored for one program on one machine with one algorithm.
struct ExploredProgram {
  flow::ProfiledProgram program;
  std::vector<std::size_t> hot_blocks;
  std::vector<flow::IseCatalogEntry> catalog;
};

/// `params` tweaks the explorer (perf_runtime uses it to A/B the schedule
/// cache); the default reproduces the paper settings.
ExploredProgram explore_program(bench_suite::Benchmark benchmark,
                                bench_suite::OptLevel level,
                                const sched::MachineConfig& machine,
                                flow::Algorithm algorithm, int repeats,
                                std::uint64_t seed,
                                const core::ExplorerParams& params = {});

/// Selection + replacement outcome for one constraint point.
struct Outcome {
  std::uint64_t base_time = 0;
  std::uint64_t final_time = 0;
  double reduction = 0.0;
  double area = 0.0;
  int ise_types = 0;
};

Outcome evaluate(const ExploredProgram& explored,
                 const flow::SelectionConstraints& constraints,
                 const sched::MachineConfig& machine);

/// Repeats used by the harnesses (paper: 5; override with ISEX_BENCH_REPEATS
/// to trade fidelity for speed).
int bench_repeats();

const char* algorithm_tag(flow::Algorithm algorithm);

/// Explores one (benchmark, flavor) per entry of `benchmarks`, all as one
/// parallel batch on the default pool.  Each program owns its Rng(seed), so
/// the output is identical to calling explore_program in a loop.
std::vector<ExploredProgram> explore_programs(
    const std::vector<bench_suite::Benchmark>& benchmarks,
    bench_suite::OptLevel level, const sched::MachineConfig& machine,
    flow::Algorithm algorithm, int repeats, std::uint64_t seed);

/// Prints the default pool's RuntimeStats (jobs, steals, cache hit rate,
/// stage wall times); every sweep harness calls this before exiting.  With
/// ISEX_METRICS_OUT / ISEX_TRACE_OUT set it also writes a Prometheus
/// snapshot / Chrome trace to those paths (see docs/OBSERVABILITY.md).
void print_runtime_stats(std::ostream& out);

}  // namespace isex::benchx
