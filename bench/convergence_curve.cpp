// Diagnostic: ACO convergence behaviour on one hot block.
//
// Emits the canonical per-iteration convergence curve for the CRC32 O3
// kernel — TET against the round's best/mean/worst, pheromone decision
// entropy, and the binding max-option-probability vs P_END — the classic
// "ant colony converges" curve, and a window into the trail/merit dynamics
// of §4.3.
//
// The records and the CSV come straight from the trace layer's
// ExplorationTelemetry (the explorer's IterationTrace *is* its
// ConvergencePoint), so this harness, `isex --convergence-out`, and
// tools/validate_trace.py all share one format.  A condensed table is
// printed for eyeballing; set ISEX_CONVERGENCE_OUT=file.csv to write the
// full curve (docs/OBSERVABILITY.md shows how to plot it).
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench_suite/kernels.hpp"
#include "core/mi_explorer.hpp"
#include "trace/telemetry.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace isex;

  const auto machine = sched::MachineConfig::make(2, {6, 3});
  isa::IsaFormat format;
  format.reg_file = machine.reg_file;
  core::ExplorerParams params;
  params.collect_trace = true;
  const core::MultiIssueExplorer explorer(machine, format,
                                          hw::HwLibrary::paper_default(),
                                          params);

  const auto program = bench_suite::make_program(
      bench_suite::Benchmark::kCrc32, bench_suite::OptLevel::kO3);
  const dfg::Graph& block = program.blocks[0].graph;

  Rng rng(17);
  const core::ExplorationResult result = explorer.explore(block, rng);

  std::cout << "ACO convergence on CRC32/O3 hot block (" << block.num_nodes()
            << " ops, machine " << machine.label() << ")\n"
            << "base " << result.base_cycles << " cycles -> final "
            << result.final_cycles << " cycles in " << result.rounds
            << " round(s)\n\n";

  // Condensed view: a round's first iterations, then every fifth.
  TablePrinter table;
  table.set_header({"round", "iter", "TET", "best TET", "mean TET",
                    "entropy", "max prob", "converged ops"});
  int last_round = -1;
  for (const core::IterationTrace& t : result.trace) {
    const bool new_round = t.round != last_round;
    if (!new_round && t.iteration % 5 != 0) continue;
    last_round = t.round;
    table.add_row({std::to_string(t.round + 1), std::to_string(t.iteration + 1),
                   std::to_string(t.tet), std::to_string(t.best_tet),
                   TablePrinter::fmt(t.mean_tet, 2),
                   TablePrinter::fmt(t.entropy, 3),
                   TablePrinter::fmt(t.max_option_probability, 3),
                   TablePrinter::pct(t.converged_fraction, 0)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: TET noise narrows onto the best schedule, "
               "entropy decays toward 0, and max prob climbs past P_END="
            << params.p_end << " within each round.\n";

  if (const char* path = std::getenv("ISEX_CONVERGENCE_OUT")) {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    trace::ExplorationTelemetry::write_csv(out, result.trace);
    std::cout << "wrote full curve to " << path << " ("
              << result.trace.size() << " points)\n";
  }
  return 0;
}
