// Diagnostic: ACO convergence behaviour on one hot block.
//
// Prints the per-iteration total execution time (TET) and the fraction of
// operations whose selected probability has passed P_END for the first
// exploration round of the CRC32 O3 kernel — the classic "ant colony
// converges" curve, and a window into the trail/merit dynamics of §4.3.
#include <iostream>

#include "bench_suite/kernels.hpp"
#include "core/mi_explorer.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace isex;

  const auto machine = sched::MachineConfig::make(2, {6, 3});
  isa::IsaFormat format;
  format.reg_file = machine.reg_file;
  core::ExplorerParams params;
  params.collect_trace = true;
  const core::MultiIssueExplorer explorer(machine, format,
                                          hw::HwLibrary::paper_default(),
                                          params);

  const auto program = bench_suite::make_program(
      bench_suite::Benchmark::kCrc32, bench_suite::OptLevel::kO3);
  const dfg::Graph& block = program.blocks[0].graph;

  Rng rng(17);
  const core::ExplorationResult result = explorer.explore(block, rng);

  std::cout << "ACO convergence on CRC32/O3 hot block (" << block.num_nodes()
            << " ops, machine " << machine.label() << ")\n"
            << "base " << result.base_cycles << " cycles -> final "
            << result.final_cycles << " cycles in " << result.rounds
            << " round(s)\n\n";

  TablePrinter table;
  table.set_header({"round", "iter", "TET", "best TET", "converged ops"});
  int last_round = -1;
  for (const core::IterationTrace& t : result.trace) {
    // Sample the curve: always show a round's first iterations, then every
    // fifth, to keep the table readable.
    const bool new_round = t.round != last_round;
    if (!new_round && t.iteration % 5 != 0) continue;
    last_round = t.round;
    table.add_row({std::to_string(t.round + 1), std::to_string(t.iteration + 1),
                   std::to_string(t.tet), std::to_string(t.best_tet),
                   TablePrinter::pct(t.converged_fraction, 0)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: TET noise narrows onto the best schedule "
               "while the converged fraction climbs to 100% within each "
               "round.\n";
  return 0;
}
