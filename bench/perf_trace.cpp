// Observability overhead micro-benchmarks (google-benchmark).
//
// Two questions, matching the trace layer's cost model (src/trace/trace.hpp):
//
//  1. What do the hooks cost when *no* sink is configured?  BM_SpanDisabled
//     is the answer for tracing (one relaxed load + branch) and
//     BM_CounterInc / BM_HistogramObserve for metrics (one atomic RMW —
//     metrics are always live, there is no off switch to pay for).
//  2. What does turning tracing *on* cost?  BM_SpanEnabled measures one
//     clock-pair + buffered append; BM_ExploreBlock/off vs /on shows the
//     end-to-end effect on a real exploration.
//
// The acceptance bar is on BM_ExploreBlock/off: with the tracer disabled a
// traced build must stay within 2% of the pre-instrumentation explorer
// (perf_explorer's BM_ExploreBlock is the same workload, params, and seed —
// compare against a pre-trace checkout to regress the claim).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "core/mi_explorer.hpp"
#include "random_dag.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace {

using namespace isex;

// --- hook costs -----------------------------------------------------------

void BM_SpanDisabled(benchmark::State& state) {
  trace::Tracer tracer;  // enabled_ == false: ctor is a load, dtor a null test
  for (auto _ : state) {
    const trace::Span span("bench.disabled", tracer);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  std::uint64_t n = 0;
  for (auto _ : state) {
    const trace::Span span("bench.enabled", tracer);
    benchmark::DoNotOptimize(&span);
    // Bound buffer growth; the amortised clear is noise next to the clock
    // reads being measured.
    if ((++n & 0xFFFF) == 0) tracer.reset();
  }
}
BENCHMARK(BM_SpanEnabled);

void BM_InstantEnabled(benchmark::State& state) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  std::uint64_t n = 0;
  for (auto _ : state) {
    tracer.record_instant("bench.instant");
    if ((++n & 0xFFFF) == 0) tracer.reset();
  }
}
BENCHMARK(BM_InstantEnabled);

void BM_CounterInc(benchmark::State& state) {
  trace::MetricsRegistry registry;
  trace::Counter& counter = registry.counter("bench_counter_total");
  for (auto _ : state) counter.inc();
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterInc);

void BM_GaugeSet(benchmark::State& state) {
  trace::MetricsRegistry registry;
  trace::Gauge& gauge = registry.gauge("bench_gauge");
  double v = 0.0;
  for (auto _ : state) gauge.set(v += 1.0);
  benchmark::DoNotOptimize(gauge.value());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  trace::MetricsRegistry registry;
  trace::Histogram& hist =
      registry.histogram("bench_hist", {4, 8, 16, 32, 64, 128, 256, 512});
  double v = 0.0;
  for (auto _ : state) {
    hist.observe(v);
    v = v < 600.0 ? v + 1.0 : 0.0;
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramObserve);

// --- end to end -----------------------------------------------------------

/// Same workload as perf_explorer's BM_ExploreBlock (seed 5, 40 iterations,
/// (6/3, 2IS) machine) so the off-variant is directly comparable with the
/// pre-instrumentation baseline.
void explore_block(benchmark::State& state, bool tracing) {
  Rng dag_rng(5);
  const dfg::Graph g =
      benchx::random_dag(static_cast<std::size_t>(state.range(0)), dag_rng);
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  isa::IsaFormat format;
  format.reg_file = machine.reg_file;
  core::ExplorerParams params;
  params.max_iterations = 40;  // bounded for benchmarking
  const core::MultiIssueExplorer explorer(machine, format,
                                          hw::HwLibrary::paper_default(),
                                          params);
  trace::Tracer::global().set_enabled(tracing);
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(explorer.explore(g, rng));
    if (tracing) trace::Tracer::global().reset();
  }
  trace::Tracer::global().set_enabled(false);
  trace::Tracer::global().reset();
}

void BM_ExploreBlock_TracingOff(benchmark::State& state) {
  explore_block(state, false);
}
BENCHMARK(BM_ExploreBlock_TracingOff)->Arg(64)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_ExploreBlock_TracingOn(benchmark::State& state) {
  explore_block(state, true);
}
BENCHMARK(BM_ExploreBlock_TracingOn)->Arg(64)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
