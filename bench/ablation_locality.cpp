// Ablation: what does schedule-awareness actually buy?
//
// Three explorer variants on the same 2-issue machine:
//   MI       — full algorithm (critical-path merit case 1 + Max_AEC case 4);
//   MI-noloc — locality terms disabled (every op treated as critical; the
//              Max_AEC area-saving branch never fires) but the internal
//              machine is still 2-issue;
//   SI       — prior art: locality off AND a single-issue internal machine.
// Reported per benchmark (O3): final reduction and ASFU area at a 40 k µm²
// budget.  The DESIGN.md design-choice this ablates: "identifying the
// critical path is essential for exploring ISE in multiple-issue
// processors" (§1.4).
#include <iostream>
#include <vector>

#include "baseline/si_explorer.hpp"
#include "core/mi_explorer.hpp"
#include "flow/profiling.hpp"
#include "flow/replacement.hpp"
#include "harness_common.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace isex;

benchx::Outcome run_variant(bench_suite::Benchmark benchmark,
                            const sched::MachineConfig& machine,
                            const sched::MachineConfig& internal_machine,
                            bool locality_aware, int repeats) {
  benchx::ExploredProgram explored;
  explored.program =
      bench_suite::make_program(benchmark, bench_suite::OptLevel::kO3);
  const auto costs = flow::profile_blocks(explored.program, machine);
  explored.hot_blocks = flow::select_hot_blocks(costs, 0.95, 8);

  isa::IsaFormat format;
  format.reg_file = machine.reg_file;
  core::ExplorerParams params;
  params.locality_aware = locality_aware;
  const core::MultiIssueExplorer explorer(internal_machine, format,
                                          hw::HwLibrary::paper_default(),
                                          params);
  Rng rng(53);
  std::vector<core::ExplorationResult> results;
  for (const std::size_t bi : explored.hot_blocks) {
    results.push_back(explorer.explore_best_of(
        explored.program.blocks[bi].graph, repeats, rng));
  }
  explored.catalog =
      flow::build_catalog(explored.program, explored.hot_blocks, results);

  flow::SelectionConstraints constraints;
  constraints.area_budget = 40000.0;
  return benchx::evaluate(explored, constraints, machine);
}

}  // namespace

int main() {
  const int repeats = benchx::bench_repeats();
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  const auto single = sched::MachineConfig::make(1, {6, 3});

  std::cout << "Ablation: schedule-awareness of the explorer "
            << "(deployment machine " << machine.label()
            << ", 40000 um^2 budget, O3)\n\n";

  TablePrinter table;
  table.set_header({"benchmark", "MI red.", "MI area", "MI-noloc red.",
                    "MI-noloc area", "SI red.", "SI area"});
  for (const auto benchmark : bench_suite::all_benchmarks()) {
    const auto mi = run_variant(benchmark, machine, machine, true, repeats);
    const auto noloc = run_variant(benchmark, machine, machine, false, repeats);
    const auto si = run_variant(benchmark, machine, single, false, repeats);
    table.add_row({std::string(bench_suite::name(benchmark)),
                   TablePrinter::pct(mi.reduction),
                   TablePrinter::fmt(mi.area, 0),
                   TablePrinter::pct(noloc.reduction),
                   TablePrinter::fmt(noloc.area, 0),
                   TablePrinter::pct(si.reduction),
                   TablePrinter::fmt(si.area, 0)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: MI matches or beats both ablations at "
               "equal/lower area; the noloc variant wastes area on "
               "off-critical-path operations.\n";
  return 0;
}
