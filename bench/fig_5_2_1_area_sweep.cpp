// Regenerates Figure 5.2.1: average execution-time reduction under silicon
// area constraints (20000 / 40000 / 80000 / 160000 / 320000 µm²).
//
// Bars: {MI, SI} × six machine configurations × {O0, O3}; each bar averages
// the seven benchmarks.  MI is the proposed schedule-aware explorer, SI the
// legality-only prior art [8].
#include <iostream>
#include <vector>

#include "harness_common.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace isex;
  using benchx::ExploredProgram;

  // The paper sweeps 20k–320k; 5k and 10k are added to expose the region
  // where the budget actually binds on our (leaner) modelled kernels —
  // that is where the two explorers' area efficiency separates.
  const std::vector<double> kBudgets = {5000,  10000,  20000,
                                        40000, 80000, 160000, 320000};
  const int repeats = benchx::bench_repeats();

  std::cout << "Figure 5.2.1: execution time reduction under different "
               "silicon area constraints\n"
            << "(avg over 7 benchmarks, best of " << repeats
            << " explorations per block)\n\n";

  TablePrinter table;
  {
    std::vector<std::string> header = {"config"};
    for (const double b : kBudgets)
      header.push_back(TablePrinter::fmt(b / 1000.0, 0) + "k um^2");
    table.set_header(header);
  }

  for (const auto algorithm :
       {flow::Algorithm::kMultiIssue, flow::Algorithm::kSingleIssue}) {
    for (const auto& machine : benchx::paper_machines()) {
      for (const auto level :
           {bench_suite::OptLevel::kO0, bench_suite::OptLevel::kO3}) {
        // Explore once per benchmark (one parallel batch on the runtime),
        // then replay selection per budget.
        const std::vector<ExploredProgram> explored =
            benchx::explore_programs(bench_suite::all_benchmarks(), level,
                                     machine, algorithm, repeats, /*seed=*/17);
        std::vector<std::string> row = {
            std::string(benchx::algorithm_tag(algorithm)) + machine.label() +
            ", " + std::string(bench_suite::name(level))};
        for (const double budget : kBudgets) {
          flow::SelectionConstraints constraints;
          constraints.area_budget = budget;
          constraints.max_ises = 32;
          std::vector<double> reductions;
          for (const ExploredProgram& e : explored)
            reductions.push_back(
                benchx::evaluate(e, constraints, machine).reduction);
          row.push_back(TablePrinter::pct(summarize(reductions).mean));
        }
        table.add_row(row);
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shapes: MI >= SI per row; reductions saturate "
               "with budget; O3 leads at 2-issue, O0 catches up at 3-issue.\n";
  benchx::print_runtime_stats(std::cout);
  return 0;
}
