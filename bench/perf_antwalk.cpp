// Ant-walk hot-path microbench: walks/sec and heap allocations per walk of
// the optimized AntWalk (per-walk weight table, incremental Ready-Matrix,
// WalkScratch reuse) against a self-contained reference implementation of
// the pre-optimization walk (per-step Ready-Matrix rebuild, per-entry
// pheromone weight calls, fresh buffers every walk).  Both consume identical
// RNG streams, so the bench double-checks that the optimized walk is
// byte-identical to the reference on every benchmark DFG.
//
// Results land in BENCH_antwalk.json.  Flags:
//   --quick       fewer walks (CI smoke)
//   --walks N     walks per benchmark DFG (default 2000, quick 300)
//   --floor W     exit 1 if optimized walks/sec < 0.7 × W (perf regression
//                 gate; the 30% slack absorbs runner noise)
// Exit is also nonzero when the optimized walk diverges from the reference
// or performs any heap allocation after warm-up.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "bench_suite/kernels.hpp"
#include "core/ant_walk.hpp"
#include "core/pheromone.hpp"
#include "dfg/analysis.hpp"
#include "hwlib/hw_library.hpp"
#include "isa/opcode.hpp"
#include "sched/priority.hpp"
#include "sched/schedule.hpp"
#include "util/rng.hpp"

// ---------------------------------------------------------------------------
// Counting allocation hook: every global operator new bumps one counter, so
// "allocations per walk" is an exact count, not an estimate.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size != 0 ? size : 1) == 0)
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace isex;

// ---------------------------------------------------------------------------
// Reference walk: the pre-optimization algorithm, kept verbatim — the
// Ready-Matrix is rebuilt from scratch every step with per-entry
// PheromoneState::weight calls, try_join copies the member set and recounts
// IN/OUT, and every walk allocates fresh buffers.
// ---------------------------------------------------------------------------

struct RefCycleRes {
  int issue = 0;
  int reads = 0;
  int writes = 0;
  std::array<int, sched::kNumFuClasses> fu{};
};

class RefLedger {
 public:
  explicit RefLedger(const sched::MachineConfig& cfg) : cfg_(&cfg) {}

  RefCycleRes& at(int cycle) {
    if (static_cast<std::size_t>(cycle) >= rows_.size())
      rows_.resize(static_cast<std::size_t>(cycle) + 1);
    return rows_[static_cast<std::size_t>(cycle)];
  }

  bool fits(int cycle, int issue, int reads, int writes, int fu_class) {
    const RefCycleRes& r = at(cycle);
    if (r.issue + issue > cfg_->issue_width) return false;
    if (r.reads + reads > cfg_->reg_file.read_ports) return false;
    if (r.writes + writes > cfg_->reg_file.write_ports) return false;
    if (fu_class >= 0 &&
        r.fu[static_cast<std::size_t>(fu_class)] + 1 >
            cfg_->fu_counts[static_cast<std::size_t>(fu_class)])
      return false;
    return true;
  }

  void charge(int cycle, int issue, int reads, int writes, int fu_class) {
    RefCycleRes& r = at(cycle);
    r.issue += issue;
    r.reads += reads;
    r.writes += writes;
    if (fu_class >= 0) r.fu[static_cast<std::size_t>(fu_class)] += 1;
  }

 private:
  const sched::MachineConfig* cfg_;
  std::vector<RefCycleRes> rows_;
};

struct RefGroup {
  dfg::NodeSet members;
  int start = 0;
  double depth_ns = 0.0;
  int cycles = 1;
  int reads = 0;
  int writes = 0;
};

struct RefResult {
  std::vector<int> chosen;
  std::vector<int> slot;
  std::vector<int> order;
  std::vector<int> group_id;
  std::vector<int> finish;
  std::vector<RefGroup> groups;
  int tet = 0;

  int finish_of(dfg::NodeId v) const {
    if (group_id[v] >= 0) {
      const RefGroup& g = groups[static_cast<std::size_t>(group_id[v])];
      return g.start + g.cycles;
    }
    return finish[v];
  }
};

int ref_software_cycles(const hw::IoTable& table, std::size_t option) {
  return std::max(1, static_cast<int>(std::ceil(table.option(option).delay)));
}

RefResult reference_walk(const hw::GPlus& gplus,
                         const sched::MachineConfig& machine,
                         const core::ExplorerParams& params,
                         const core::PheromoneState& pheromone,
                         std::span<const double> sp_score, Rng& rng,
                         hw::ClockSpec clock = {}) {
  const dfg::Graph& graph = gplus.graph();
  const std::size_t n = graph.num_nodes();

  RefResult result;
  result.chosen.assign(n, -1);
  result.slot.assign(n, -1);
  result.order.assign(n, -1);
  result.group_id.assign(n, -1);
  result.finish.assign(n, 0);
  if (n == 0) return result;

  RefLedger ledger(machine);
  std::vector<double> hw_depth(n, 0.0);

  std::vector<int> unresolved(n, 0);
  for (dfg::NodeId v = 0; v < n; ++v)
    unresolved[v] = static_cast<int>(graph.preds(v).size());
  std::vector<dfg::NodeId> ready;
  for (dfg::NodeId v = 0; v < n; ++v)
    if (unresolved[v] == 0) ready.push_back(v);

  std::vector<std::pair<dfg::NodeId, int>> entries;
  std::vector<double> weights;

  auto finish_of = [&](dfg::NodeId v) { return result.finish_of(v); };
  auto group_io = [&](const dfg::NodeSet& members) {
    return std::pair<int, int>{dfg::count_inputs(graph, members),
                               dfg::count_outputs(graph, members)};
  };

  auto try_join = [&](dfg::NodeId v, std::size_t opt, int gid) -> bool {
    RefGroup& g = result.groups[static_cast<std::size_t>(gid)];
    for (const dfg::NodeId p : graph.preds(v)) {
      if (!g.members.contains(p) && finish_of(p) > g.start) return false;
    }
    dfg::NodeSet grown = g.members;
    grown.insert(v);
    const auto [reads, writes] = group_io(grown);
    const int dr = reads - g.reads;
    const int dw = writes - g.writes;
    if (!ledger.fits(g.start, 0, dr, dw, -1)) return false;

    ledger.charge(g.start, 0, dr, dw, -1);
    g.members = std::move(grown);
    g.reads = reads;
    g.writes = writes;
    double depth_in = 0.0;
    for (const dfg::NodeId p : graph.preds(v)) {
      if (g.members.contains(p) && p != v)
        depth_in = std::max(depth_in, hw_depth[p]);
    }
    hw_depth[v] = depth_in + gplus.table(v).option(opt).delay;
    g.depth_ns = std::max(g.depth_ns, hw_depth[v]);
    g.cycles = clock.cycles_for(g.depth_ns);
    result.group_id[v] = gid;
    result.slot[v] = g.start;
    return true;
  };

  std::size_t scheduled = 0;
  int pick_index = 0;
  while (scheduled < n) {
    entries.clear();
    weights.clear();
    for (const dfg::NodeId v : ready) {
      const hw::IoTable& table = gplus.table(v);
      for (std::size_t o = 0; o < table.size(); ++o) {
        entries.emplace_back(v, static_cast<int>(o));
        weights.push_back(pheromone.weight(v, o) +
                          params.lambda * sp_score[v]);
      }
    }

    const std::size_t pick = rng.weighted_pick(weights);
    const auto [v, opt_i] = entries[pick];
    const auto opt = static_cast<std::size_t>(opt_i);
    const hw::IoTable& table = gplus.table(v);

    if (table.is_hardware(opt)) {
      std::vector<std::pair<int, int>> parent_groups;
      for (const dfg::NodeId p : graph.preds(v)) {
        const int gid = result.group_id[p];
        if (gid >= 0) parent_groups.emplace_back(finish_of(p), gid);
      }
      std::sort(parent_groups.begin(), parent_groups.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      bool placed = false;
      int last_gid = -1;
      for (const auto& [fin, gid] : parent_groups) {
        if (gid == last_gid) continue;
        last_gid = gid;
        if (try_join(v, opt, gid)) {
          placed = true;
          break;
        }
      }
      if (!placed) {
        int avail = 0;
        for (const dfg::NodeId p : graph.preds(v))
          avail = std::max(avail, finish_of(p));
        dfg::NodeSet solo(n);
        solo.insert(v);
        const auto [reads, writes] = group_io(solo);
        int cts = avail;
        while (!ledger.fits(cts, 1, reads, writes, -1)) ++cts;
        ledger.charge(cts, 1, reads, writes, -1);
        RefGroup g;
        g.members = std::move(solo);
        g.start = cts;
        hw_depth[v] = table.option(opt).delay;
        g.depth_ns = hw_depth[v];
        g.cycles = clock.cycles_for(g.depth_ns);
        g.reads = reads;
        g.writes = writes;
        result.group_id[v] = static_cast<int>(result.groups.size());
        result.slot[v] = cts;
        result.groups.push_back(std::move(g));
      }
    } else {
      int avail = 0;
      for (const dfg::NodeId p : graph.preds(v))
        avail = std::max(avail, finish_of(p));
      const int reads = sched::read_ports_used(graph, v);
      const int writes = sched::write_ports_used(graph, v);
      const dfg::Node& node = graph.node(v);
      const int fu_class =
          node.is_ise ? -1 : static_cast<int>(isa::traits(node.opcode).fu);
      int cts = avail;
      while (!ledger.fits(cts, 1, reads, writes, fu_class)) ++cts;
      ledger.charge(cts, 1, reads, writes, fu_class);
      result.slot[v] = cts;
      result.finish[v] = cts + ref_software_cycles(table, opt);
    }

    result.chosen[v] = opt_i;
    result.order[v] = pick_index++;
    ++scheduled;
    ready.erase(std::find(ready.begin(), ready.end(), v));
    for (const dfg::NodeId s : graph.succs(v)) {
      if (--unresolved[s] == 0) ready.push_back(s);
    }
  }

  int tet = 0;
  for (dfg::NodeId v = 0; v < n; ++v) tet = std::max(tet, finish_of(v));
  result.tet = tet;
  return result;
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

template <typename Result>
std::uint64_t digest(const Result& w, std::uint64_t h) {
  for (std::size_t v = 0; v < w.chosen.size(); ++v) {
    h = mix64(h, static_cast<std::uint64_t>(w.chosen[v]));
    h = mix64(h, static_cast<std::uint64_t>(w.slot[v]));
    h = mix64(h, static_cast<std::uint64_t>(w.order[v]));
    h = mix64(h, static_cast<std::uint64_t>(w.group_id[v]));
  }
  return mix64(h, static_cast<std::uint64_t>(w.tet));
}

struct DfgCase {
  std::string name;
  dfg::Graph graph;
};

struct ModeStats {
  double best_seconds = 0.0;  // fastest of the timing reps
  std::uint64_t walks = 0;    // walks per rep
  std::uint64_t timed_walks = 0;
  std::uint64_t allocs = 0;  // across all timed reps
  std::uint64_t hash = 0;

  double walks_per_sec() const {
    return best_seconds > 0.0 ? static_cast<double>(walks) / best_seconds
                              : 0.0;
  }
  double allocs_per_walk() const {
    return timed_walks > 0 ? static_cast<double>(allocs) /
                                 static_cast<double>(timed_walks)
                           : 0.0;
  }
};

struct CaseReport {
  std::string name;
  std::size_t nodes = 0;
  ModeStats reference;
  ModeStats optimized;
  bool identical = false;
};

std::vector<double> priority_scores(const dfg::Graph& g,
                                    const core::ExplorerParams& params) {
  std::vector<double> sp = sched::compute_priorities(g, params.sp_priority);
  double sp_max = 0.0;
  for (const double s : sp) sp_max = std::max(sp_max, s);
  if (sp_max > 0.0)
    for (double& s : sp) s = s / sp_max * params.merit_scale;
  return sp;
}

constexpr int kTimingReps = 3;

CaseReport run_case(const DfgCase& c, int walks, std::uint64_t seed) {
  CaseReport report;
  report.name = c.name;
  report.nodes = c.graph.num_nodes();

  const hw::HwLibrary lib = hw::HwLibrary::paper_default();
  const hw::GPlus gplus(c.graph, lib);
  const core::ExplorerParams params;
  const core::PheromoneState pheromone(gplus, params);
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  const std::vector<double> sp = priority_scores(c.graph, params);

  // Both modes run kTimingReps reps of the same `walks`-walk RNG stream and
  // keep the fastest rep — best-of smooths scheduler/frequency noise that
  // otherwise dominates millisecond-scale measurements.

  // Reference: per-step rebuild, fresh buffers every walk.
  report.reference.walks = static_cast<std::uint64_t>(walks);
  report.reference.best_seconds = std::numeric_limits<double>::max();
  for (int rep = 0; rep < kTimingReps; ++rep) {
    Rng rng(seed);
    const auto alloc0 = g_allocs.load(std::memory_order_relaxed);
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (int i = 0; i < walks; ++i) {
      const RefResult w =
          reference_walk(gplus, machine, params, pheromone, sp, rng);
      h = digest(w, h);
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    report.reference.best_seconds =
        std::min(report.reference.best_seconds, secs);
    report.reference.timed_walks += static_cast<std::uint64_t>(walks);
    report.reference.allocs +=
        g_allocs.load(std::memory_order_relaxed) - alloc0;
    report.reference.hash = h;
  }

  // Optimized: AntWalk with one reused scratch.  The warm-up rep replays the
  // exact RNG stream the timed reps use (outside the timed/counted window),
  // so every scratch buffer reaches the high-water size of the hardest walk
  // in the sequence before counting starts — the timed reps must then be
  // allocation-free, not just amortized-cheap.
  {
    const core::AntWalk walker(gplus, machine, params);
    core::WalkScratch scratch;
    {
      Rng warm(seed);
      for (int i = 0; i < walks; ++i) walker.run(pheromone, sp, warm, scratch);
    }
    report.optimized.walks = static_cast<std::uint64_t>(walks);
    report.optimized.best_seconds = std::numeric_limits<double>::max();
    for (int rep = 0; rep < kTimingReps; ++rep) {
      Rng rng(seed);
      const auto alloc0 = g_allocs.load(std::memory_order_relaxed);
      const auto start = std::chrono::steady_clock::now();
      std::uint64_t h = 0xcbf29ce484222325ULL;
      for (int i = 0; i < walks; ++i) {
        const core::WalkResult& w = walker.run(pheromone, sp, rng, scratch);
        h = digest(w, h);
      }
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      report.optimized.best_seconds =
          std::min(report.optimized.best_seconds, secs);
      report.optimized.timed_walks += static_cast<std::uint64_t>(walks);
      report.optimized.allocs +=
          g_allocs.load(std::memory_order_relaxed) - alloc0;
      report.optimized.hash = h;
    }
  }

  report.identical = report.reference.hash == report.optimized.hash;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  int walks = 2000;
  bool quick = false;
  double floor_walks_per_sec = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--walks") == 0 && i + 1 < argc) {
      walks = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--floor") == 0 && i + 1 < argc) {
      floor_walks_per_sec = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: perf_antwalk [--quick] [--walks N] [--floor W]\n");
      return 2;
    }
  }
  if (quick) walks = std::min(walks, 300);

  // The 7-benchmark suite's hottest O3 blocks — the DFGs every Fig 5.2
  // sweep hammers.
  std::vector<DfgCase> cases;
  for (const auto bm : bench_suite::all_benchmarks()) {
    flow::ProfiledProgram prog =
        bench_suite::make_program(bm, bench_suite::OptLevel::kO3);
    DfgCase c;
    c.name = std::string(bench_suite::name(bm));
    c.graph = std::move(prog.blocks.front().graph);
    cases.push_back(std::move(c));
  }

  std::printf("perf_antwalk: %d walks per DFG%s\n\n", walks,
              quick ? " (--quick)" : "");
  std::vector<CaseReport> reports;
  ModeStats total_ref;
  ModeStats total_opt;
  bool all_identical = true;
  for (const DfgCase& c : cases) {
    const CaseReport r = run_case(c, walks, /*seed=*/1234567);
    std::printf(
        "%-9s %3zu nodes  ref %9.0f walks/s (%5.1f allocs/walk)  "
        "opt %9.0f walks/s (%4.2f allocs/walk)  speedup %4.2fx  %s\n",
        r.name.c_str(), r.nodes, r.reference.walks_per_sec(),
        r.reference.allocs_per_walk(), r.optimized.walks_per_sec(),
        r.optimized.allocs_per_walk(),
        r.optimized.walks_per_sec() / r.reference.walks_per_sec(),
        r.identical ? "identical" : "DIVERGED");
    total_ref.best_seconds += r.reference.best_seconds;
    total_ref.walks += r.reference.walks;
    total_ref.timed_walks += r.reference.timed_walks;
    total_ref.allocs += r.reference.allocs;
    total_opt.best_seconds += r.optimized.best_seconds;
    total_opt.walks += r.optimized.walks;
    total_opt.timed_walks += r.optimized.timed_walks;
    total_opt.allocs += r.optimized.allocs;
    all_identical = all_identical && r.identical;
    reports.push_back(r);
  }

  const double speedup =
      total_opt.walks_per_sec() / total_ref.walks_per_sec();
  std::printf(
      "\ntotal: ref %.0f walks/s, opt %.0f walks/s, speedup %.2fx, "
      "opt allocs/walk %.3f, identical %s\n",
      total_ref.walks_per_sec(), total_opt.walks_per_sec(), speedup,
      total_opt.allocs_per_walk(), all_identical ? "yes" : "NO — BUG");

  FILE* json = std::fopen("BENCH_antwalk.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_antwalk.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"antwalk_hotpath\",\n");
  std::fprintf(json, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(json, "  \"walks_per_dfg\": %d,\n", walks);
  std::fprintf(json, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const CaseReport& r = reports[i];
    std::fprintf(
        json,
        "    {\"name\": \"%s\", \"nodes\": %zu, "
        "\"reference_walks_per_sec\": %.1f, \"reference_allocs_per_walk\": "
        "%.3f, \"optimized_walks_per_sec\": %.1f, "
        "\"optimized_allocs_per_walk\": %.3f, \"speedup\": %.3f, "
        "\"identical\": %s}%s\n",
        r.name.c_str(), r.nodes, r.reference.walks_per_sec(),
        r.reference.allocs_per_walk(), r.optimized.walks_per_sec(),
        r.optimized.allocs_per_walk(),
        r.optimized.walks_per_sec() / r.reference.walks_per_sec(),
        r.identical ? "true" : "false", i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json,
               "  \"total\": {\"reference_walks_per_sec\": %.1f, "
               "\"optimized_walks_per_sec\": %.1f, \"speedup\": %.3f, "
               "\"optimized_allocs_per_walk\": %.3f, \"identical\": %s},\n",
               total_ref.walks_per_sec(), total_opt.walks_per_sec(), speedup,
               total_opt.allocs_per_walk(), all_identical ? "true" : "false");
  std::fprintf(json, "  \"floor_walks_per_sec\": %.1f\n",
               floor_walks_per_sec);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote BENCH_antwalk.json\n");

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: optimized walk diverged from reference\n");
    return 1;
  }
  if (total_opt.allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu heap allocations during warmed-up walks\n",
                 static_cast<unsigned long long>(total_opt.allocs));
    return 1;
  }
  if (floor_walks_per_sec > 0.0 &&
      total_opt.walks_per_sec() < 0.7 * floor_walks_per_sec) {
    std::fprintf(stderr,
                 "FAIL: %.0f walks/s is >30%% below the floor of %.0f\n",
                 total_opt.walks_per_sec(), floor_walks_per_sec);
    return 1;
  }
  return 0;
}
