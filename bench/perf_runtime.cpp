// Runtime scaling bench: wall clock of a Fig 5.2.1-style exploration sweep
// (7 benchmarks × O3 × MI on the (6/3, 2IS) machine) at jobs ∈ {1, 2, 4, 8},
// with the schedule-evaluation cache on and off.  Results — including the
// cross-configuration determinism check — land in BENCH_runtime.json.
//
// The sweep itself is expressed as a JobGraph: one explore job per benchmark
// feeding a single evaluate/reduce job, i.e. exactly the dependency shape
// the figure harnesses have.
//
// Note on reading the numbers: thread scaling is bounded by the cores the
// host actually grants (recorded as hardware_concurrency); on a 1-core
// container jobs=8 ≈ jobs=1 while the cache still pays.  ISEX_BENCH_REPEATS
// overrides the default 3 best-of exploration repeats; each configuration is
// additionally timed ISEX_BENCH_TIMING_REPEATS times (default 3, fresh pool
// and cold cache per timing repeat) and the JSON reports per-repeat wall
// times plus their min and median — min for headline speedups, median as
// the noise check.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "harness_common.hpp"
#include "runtime/eval_cache.hpp"
#include "runtime/job_graph.hpp"
#include "runtime/runtime_stats.hpp"
#include "trace/metrics.hpp"

namespace {

using namespace isex;

int sweep_repeats() {
  if (const char* env = std::getenv("ISEX_BENCH_REPEATS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 3;
}

int timing_repeats() {
  if (const char* env = std::getenv("ISEX_BENCH_TIMING_REPEATS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 3;
}

struct SweepRun {
  int jobs = 1;
  bool cache = true;
  std::vector<double> seconds_each;  // wall time of every timing repeat
  runtime::PoolStats pool;           // from the last timing repeat
  runtime::CacheStats cache_stats;   // from the last timing repeat
  std::vector<double> reductions;  // per benchmark, for determinism checking

  double seconds_min() const {
    return *std::min_element(seconds_each.begin(), seconds_each.end());
  }
  double seconds_median() const {
    std::vector<double> s = seconds_each;
    std::sort(s.begin(), s.end());
    const std::size_t n = s.size();
    return n % 2 == 1 ? s[n / 2] : 0.5 * (s[n / 2 - 1] + s[n / 2]);
  }
};

void run_sweep_once(SweepRun& run, int jobs, bool cache) {
  // Fresh pool (fresh counters) at the requested width; cold cache, so
  // every timing repeat measures the same work.
  runtime::ThreadPool::set_default_jobs(jobs);
  runtime::schedule_cache().clear();
  runtime::schedule_cache().reset_stats();

  const auto machine = sched::MachineConfig::make(2, {6, 3});
  const std::vector<bench_suite::Benchmark> benchmarks =
      bench_suite::all_benchmarks();
  const int repeats = sweep_repeats();
  core::ExplorerParams params;
  params.use_eval_cache = cache;

  flow::SelectionConstraints constraints;
  constraints.area_budget = 40000.0;
  constraints.max_ises = 32;

  std::vector<benchx::ExploredProgram> explored(benchmarks.size());
  run.reductions.assign(benchmarks.size(), 0.0);

  const auto start = std::chrono::steady_clock::now();
  const runtime::StageTimer stage_timer("exploration");
  runtime::JobGraph graph;
  std::vector<runtime::JobGraph::JobId> explore_jobs;
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    explore_jobs.push_back(graph.add(
        "explore:" + std::string(bench_suite::name(benchmarks[i])), [&, i]() {
          explored[i] = benchx::explore_program(
              benchmarks[i], bench_suite::OptLevel::kO3, machine,
              flow::Algorithm::kMultiIssue, repeats, /*seed=*/17, params);
        }));
  }
  const auto reduce = graph.add("evaluate", [&]() {
    for (std::size_t i = 0; i < benchmarks.size(); ++i)
      run.reductions[i] =
          benchx::evaluate(explored[i], constraints, machine).reduction;
  });
  for (const auto job : explore_jobs) graph.add_dependency(reduce, job);
  graph.run(runtime::ThreadPool::default_pool());
  const auto elapsed = std::chrono::steady_clock::now() - start;

  run.seconds_each.push_back(std::chrono::duration<double>(elapsed).count());
  run.pool = runtime::ThreadPool::default_pool().stats();
  run.cache_stats = runtime::schedule_cache().stats();
}

SweepRun run_sweep(int jobs, bool cache) {
  SweepRun run;
  run.jobs = jobs;
  run.cache = cache;
  for (int r = 0; r < timing_repeats(); ++r) run_sweep_once(run, jobs, cache);
  return run;
}

}  // namespace

int main() {
  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("perf_runtime: Fig 5.2.1-style sweep (7 benchmarks, O3, MI)\n");
  std::printf("hardware_concurrency: %u, repeats: %d, timing_repeats: %d\n\n",
              hardware, sweep_repeats(), timing_repeats());
  if (hardware < 2)
    std::printf("note: single-core host — jobs-sweep speedups are not "
                "meaningful (scaling_valid=false)\n\n");

  std::vector<SweepRun> runs;
  for (const int jobs : {1, 2, 4, 8}) runs.push_back(run_sweep(jobs, true));
  runs.push_back(run_sweep(1, false));
  runs.push_back(run_sweep(8, false));

  // Determinism across every configuration: same seed, same reductions.
  bool deterministic = true;
  for (const SweepRun& run : runs)
    if (run.reductions != runs.front().reductions) deterministic = false;

  const double base = runs.front().seconds_min();
  for (const SweepRun& run : runs) {
    std::printf(
        "jobs=%d cache=%-3s  min %7.3f s  median %7.3f s  speedup %.2fx  "
        "jobs_run=%llu steals=%llu  cache: %llu/%llu hits (%d%%)\n",
        run.jobs, run.cache ? "on" : "off", run.seconds_min(),
        run.seconds_median(), base / run.seconds_min(),
        static_cast<unsigned long long>(run.pool.jobs_run),
        static_cast<unsigned long long>(run.pool.steals),
        static_cast<unsigned long long>(run.cache_stats.hits),
        static_cast<unsigned long long>(run.cache_stats.hits +
                                        run.cache_stats.misses),
        static_cast<int>(run.cache_stats.hit_rate() * 100.0 + 0.5));
  }
  std::printf("\ndeterministic across configurations: %s\n",
              deterministic ? "yes" : "NO — BUG");

  FILE* json = std::fopen("BENCH_runtime.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_runtime.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"sweep\": \"fig_5_2_1_style_7bench_O3_MI_6_3_2IS\",\n");
  std::fprintf(json, "  \"hardware_concurrency\": %u,\n", hardware);
  // On a single-core host the jobs sweep cannot show thread scaling — the
  // flat curve is a host artifact, not a regression.  Stamp that so
  // tools/bench_report.py annotates instead of alarming.
  std::fprintf(json, "  \"scaling_valid\": %s,\n",
               hardware >= 2 ? "true" : "false");
  std::fprintf(json, "  \"repeats\": %d,\n", sweep_repeats());
  std::fprintf(json, "  \"timing_repeats\": %d,\n", timing_repeats());
  std::fprintf(json, "  \"deterministic\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(json, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const SweepRun& run = runs[i];
    std::fprintf(json,
                 "    {\"jobs\": %d, \"cache\": %s, \"seconds_each\": [",
                 run.jobs, run.cache ? "true" : "false");
    for (std::size_t r = 0; r < run.seconds_each.size(); ++r)
      std::fprintf(json, "%s%.4f", r > 0 ? ", " : "", run.seconds_each[r]);
    std::fprintf(json,
                 "], \"seconds_min\": %.4f, \"seconds_median\": %.4f, "
                 "\"speedup_vs_jobs1\": %.3f, \"pool_jobs_run\": %llu, "
                 "\"pool_steals\": %llu, \"cache_hits\": %llu, "
                 "\"cache_misses\": %llu, \"cache_evictions\": %llu, "
                 "\"cache_hit_rate\": %.4f}%s\n",
                 run.seconds_min(), run.seconds_median(),
                 base / run.seconds_min(),
                 static_cast<unsigned long long>(run.pool.jobs_run),
                 static_cast<unsigned long long>(run.pool.steals),
                 static_cast<unsigned long long>(run.cache_stats.hits),
                 static_cast<unsigned long long>(run.cache_stats.misses),
                 static_cast<unsigned long long>(run.cache_stats.evictions),
                 run.cache_stats.hit_rate(),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_runtime.json\n");

  // Same numbers through the metrics pipe: mirror the final configuration's
  // point-in-time stats into the registry (the live counters accumulated
  // during the sweep are already there) and snapshot it, so the JSON report
  // and the Prometheus view can be cross-checked against each other.
  runtime::collect_runtime_stats(runtime::ThreadPool::default_pool())
      .publish(trace::MetricsRegistry::global());
  std::ofstream prom("BENCH_runtime.prom");
  if (prom) {
    trace::MetricsRegistry::global().write_prometheus(prom);
    std::printf("wrote BENCH_runtime.prom\n");
  } else {
    std::fprintf(stderr, "cannot write BENCH_runtime.prom\n");
    return 1;
  }
  return deterministic ? 0 : 1;
}
