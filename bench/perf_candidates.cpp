// Candidate-evaluation microbench: evaluations/sec and heap allocations per
// evaluation of the copy-free pipeline (dfg::CollapsedView overlay scheduled
// into a reusable sched::SchedulerScratch) against the pre-optimization
// reference (materialize Graph::collapse, schedule the copy with fresh
// buffers).  Both score the identical candidate stream, and every makespan
// is cross-checked, so the bench doubles as an equivalence test.
//
// Candidates are convex by construction: a window of consecutive positions
// in a topological order can never be left and re-entered (edges only go
// forward in topo position).  Windows of size 2..8 slide over the hottest
// O3 block of each suite benchmark plus a few random DAGs.
//
// Results land in BENCH_candidates.json.  Flags:
//   --quick       fewer evaluation passes (CI smoke)
//   --evals N     evaluation passes per case (default 120, quick 25)
//   --floor E     exit 1 if optimized evals/sec < 0.7 × E, or if the
//                 speedup over the reference drops below 2× (the tentpole's
//                 headline claim; the floor flag arms both gates)
// Exit is also nonzero when any view makespan diverges from the collapsed
// graph's or the warmed-up optimized path performs any heap allocation.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "bench_suite/kernels.hpp"
#include "dfg/analysis.hpp"
#include "dfg/collapsed_view.hpp"
#include "dfg/graph.hpp"
#include "random_dag.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/machine_config.hpp"
#include "util/rng.hpp"

// ---------------------------------------------------------------------------
// Counting allocation hook: every global operator new bumps one counter, so
// "allocations per evaluation" is an exact count, not an estimate.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size != 0 ? size : 1) == 0)
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace isex;

struct Candidate {
  dfg::NodeSet members;
  dfg::IseInfo info;
};

sched::MachineConfig bench_machine() {
  return sched::MachineConfig::make(2, {6, 3});
}

struct DfgCase {
  std::string name;
  dfg::Graph graph;
  std::vector<Candidate> candidates;
};

// Sliding topo windows, the same legal-candidate source the equivalence
// test uses (tests/test_collapsed_view.cpp).  Windows are port-legalized
// like real candidates: a supernode demanding more register ports than the
// machine has could never issue.
std::vector<Candidate> make_candidates(const dfg::Graph& g,
                                       const sched::MachineConfig& machine) {
  std::vector<Candidate> out;
  const std::vector<dfg::NodeId> topo = g.topological_order();
  for (std::size_t len = 2; len <= 8; ++len) {
    for (std::size_t start = 0; start + len <= topo.size(); start += 2) {
      Candidate c;
      c.members.resize(g.num_nodes());
      for (std::size_t i = start; i < start + len; ++i)
        c.members.insert(topo[i]);
      c.info.latency_cycles = 1 + static_cast<int>(len / 4);
      c.info.area = 4.0 * static_cast<double>(len);
      c.info.num_inputs = dfg::count_inputs(g, c.members);
      c.info.num_outputs = dfg::count_outputs(g, c.members);
      if (c.info.num_inputs > machine.reg_file.read_ports ||
          c.info.num_outputs > machine.reg_file.write_ports)
        continue;
      out.push_back(std::move(c));
    }
  }
  return out;
}

struct ModeStats {
  double best_seconds = 0.0;  // fastest of the timing reps
  std::uint64_t evals = 0;    // evaluations per rep
  std::uint64_t timed_evals = 0;
  std::uint64_t allocs = 0;  // across all timed reps
  std::uint64_t cycle_sum = 0;

  double evals_per_sec() const {
    return best_seconds > 0.0 ? static_cast<double>(evals) / best_seconds
                              : 0.0;
  }
  double allocs_per_eval() const {
    return timed_evals > 0 ? static_cast<double>(allocs) /
                                 static_cast<double>(timed_evals)
                           : 0.0;
  }
};

struct CaseReport {
  std::string name;
  std::size_t nodes = 0;
  std::size_t candidates = 0;
  ModeStats reference;
  ModeStats optimized;
  bool identical = false;
};

constexpr int kTimingReps = 3;

CaseReport run_case(const DfgCase& c, int passes) {
  CaseReport report;
  report.name = c.name;
  report.nodes = c.graph.num_nodes();
  report.candidates = c.candidates.size();
  const std::uint64_t evals_per_rep =
      static_cast<std::uint64_t>(passes) * c.candidates.size();

  const sched::ListScheduler scheduler(bench_machine());

  // Reference: materialize the collapse, schedule the copy — what the
  // explorer's evaluation loop did before the overlay pipeline.
  report.reference.evals = evals_per_rep;
  report.reference.best_seconds = std::numeric_limits<double>::max();
  for (int rep = 0; rep < kTimingReps; ++rep) {
    const auto alloc0 = g_allocs.load(std::memory_order_relaxed);
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t sum = 0;
    for (int p = 0; p < passes; ++p) {
      for (const Candidate& cand : c.candidates) {
        const dfg::Graph collapsed = c.graph.collapse(cand.members, cand.info);
        sum += static_cast<std::uint64_t>(scheduler.cycles(collapsed));
      }
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    report.reference.best_seconds =
        std::min(report.reference.best_seconds, secs);
    report.reference.timed_evals += evals_per_rep;
    report.reference.allocs +=
        g_allocs.load(std::memory_order_relaxed) - alloc0;
    report.reference.cycle_sum = sum;
  }

  // Optimized: one reused view + scratch.  The warm-up pass replays the
  // exact candidate stream outside the timed/counted window, so every
  // buffer reaches the high-water size of the hardest candidate before
  // counting starts — the timed reps must then be allocation-free, not just
  // amortized-cheap.
  {
    dfg::CollapsedView view;
    sched::SchedulerScratch scratch;
    for (const Candidate& cand : c.candidates) {
      view.assign(c.graph, cand.members, cand.info);
      (void)scheduler.cycles(view, scratch);
    }
    report.optimized.evals = evals_per_rep;
    report.optimized.best_seconds = std::numeric_limits<double>::max();
    for (int rep = 0; rep < kTimingReps; ++rep) {
      const auto alloc0 = g_allocs.load(std::memory_order_relaxed);
      const auto start = std::chrono::steady_clock::now();
      std::uint64_t sum = 0;
      for (int p = 0; p < passes; ++p) {
        for (const Candidate& cand : c.candidates) {
          view.assign(c.graph, cand.members, cand.info);
          sum += static_cast<std::uint64_t>(scheduler.cycles(view, scratch));
        }
      }
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      report.optimized.best_seconds =
          std::min(report.optimized.best_seconds, secs);
      report.optimized.timed_evals += evals_per_rep;
      report.optimized.allocs +=
          g_allocs.load(std::memory_order_relaxed) - alloc0;
      report.optimized.cycle_sum = sum;
    }
  }

  report.identical = report.reference.cycle_sum == report.optimized.cycle_sum;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  int passes = 120;
  bool quick = false;
  double floor_evals_per_sec = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--evals") == 0 && i + 1 < argc) {
      passes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--floor") == 0 && i + 1 < argc) {
      floor_evals_per_sec = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: perf_candidates [--quick] [--evals N] [--floor E]\n");
      return 2;
    }
  }
  if (quick) passes = std::min(passes, 25);

  // The 7-benchmark suite's hottest O3 blocks — the graphs whose candidate
  // floods the explorer actually scores — plus denser random DAGs that
  // stress supernode-boundary edge dedup.
  std::vector<DfgCase> cases;
  for (const auto bm : bench_suite::all_benchmarks()) {
    flow::ProfiledProgram prog =
        bench_suite::make_program(bm, bench_suite::OptLevel::kO3);
    DfgCase c;
    c.name = std::string(bench_suite::name(bm));
    c.graph = std::move(prog.blocks.front().graph);
    c.candidates = make_candidates(c.graph, bench_machine());
    cases.push_back(std::move(c));
  }
  {
    Rng rng(42);
    for (const std::size_t n : {24u, 48u}) {
      DfgCase c;
      c.name = "rand" + std::to_string(n);
      c.graph = benchx::random_dag(n, rng, 0.55);
      c.candidates = make_candidates(c.graph, bench_machine());
      cases.push_back(std::move(c));
    }
  }

  std::printf("perf_candidates: %d passes per case%s\n\n", passes,
              quick ? " (--quick)" : "");
  std::vector<CaseReport> reports;
  ModeStats total_ref;
  ModeStats total_opt;
  bool all_identical = true;
  for (const DfgCase& c : cases) {
    const CaseReport r = run_case(c, passes);
    std::printf(
        "%-9s %3zu nodes %3zu cands  ref %9.0f evals/s (%5.1f allocs/eval)  "
        "opt %9.0f evals/s (%4.2f allocs/eval)  speedup %5.2fx  %s\n",
        r.name.c_str(), r.nodes, r.candidates, r.reference.evals_per_sec(),
        r.reference.allocs_per_eval(), r.optimized.evals_per_sec(),
        r.optimized.allocs_per_eval(),
        r.optimized.evals_per_sec() / r.reference.evals_per_sec(),
        r.identical ? "identical" : "DIVERGED");
    total_ref.best_seconds += r.reference.best_seconds;
    total_ref.evals += r.reference.evals;
    total_ref.timed_evals += r.reference.timed_evals;
    total_ref.allocs += r.reference.allocs;
    total_opt.best_seconds += r.optimized.best_seconds;
    total_opt.evals += r.optimized.evals;
    total_opt.timed_evals += r.optimized.timed_evals;
    total_opt.allocs += r.optimized.allocs;
    all_identical = all_identical && r.identical;
    reports.push_back(r);
  }

  const double speedup = total_opt.evals_per_sec() / total_ref.evals_per_sec();
  std::printf(
      "\ntotal: ref %.0f evals/s, opt %.0f evals/s, speedup %.2fx, "
      "opt allocs/eval %.3f, identical %s\n",
      total_ref.evals_per_sec(), total_opt.evals_per_sec(), speedup,
      total_opt.allocs_per_eval(), all_identical ? "yes" : "NO — BUG");

  FILE* json = std::fopen("BENCH_candidates.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_candidates.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"candidate_eval_pipeline\",\n");
  std::fprintf(json, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(json, "  \"passes_per_case\": %d,\n", passes);
  std::fprintf(json, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const CaseReport& r = reports[i];
    std::fprintf(
        json,
        "    {\"name\": \"%s\", \"nodes\": %zu, \"candidates\": %zu, "
        "\"reference_evals_per_sec\": %.1f, \"reference_allocs_per_eval\": "
        "%.3f, \"optimized_evals_per_sec\": %.1f, "
        "\"optimized_allocs_per_eval\": %.3f, \"speedup\": %.3f, "
        "\"identical\": %s}%s\n",
        r.name.c_str(), r.nodes, r.candidates, r.reference.evals_per_sec(),
        r.reference.allocs_per_eval(), r.optimized.evals_per_sec(),
        r.optimized.allocs_per_eval(),
        r.optimized.evals_per_sec() / r.reference.evals_per_sec(),
        r.identical ? "true" : "false", i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json,
               "  \"total\": {\"reference_evals_per_sec\": %.1f, "
               "\"optimized_evals_per_sec\": %.1f, \"speedup\": %.3f, "
               "\"optimized_allocs_per_eval\": %.3f, \"identical\": %s},\n",
               total_ref.evals_per_sec(), total_opt.evals_per_sec(), speedup,
               total_opt.allocs_per_eval(), all_identical ? "true" : "false");
  std::fprintf(json, "  \"floor_evals_per_sec\": %.1f\n",
               floor_evals_per_sec);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote BENCH_candidates.json\n");

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: view makespan diverged from Graph::collapse\n");
    return 1;
  }
  if (total_opt.allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu heap allocations during warmed-up evaluations\n",
                 static_cast<unsigned long long>(total_opt.allocs));
    return 1;
  }
  if (floor_evals_per_sec > 0.0) {
    if (total_opt.evals_per_sec() < 0.7 * floor_evals_per_sec) {
      std::fprintf(stderr,
                   "FAIL: %.0f evals/s is >30%% below the floor of %.0f\n",
                   total_opt.evals_per_sec(), floor_evals_per_sec);
      return 1;
    }
    if (speedup < 2.0) {
      std::fprintf(stderr,
                   "FAIL: %.2fx speedup over the copy+schedule reference is "
                   "below the promised 2x\n",
                   speedup);
      return 1;
    }
  }
  return 0;
}
