// Wall-clock micro-benchmarks (google-benchmark) for the per-iteration
// stages the complexity analysis (§4.4) covers: one ant walk, one merit
// update (dominated by Hardware-Grouping's O(k²)), one list schedule, and
// a full single-round exploration, swept over DFG size k.
//
// A custom main injects --benchmark_out=BENCH_explorer.json (JSON format)
// unless the caller passed their own --benchmark_out, so a bare run always
// leaves a machine-readable report next to the other BENCH_*.json files.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "core/ant_walk.hpp"
#include "core/merit.hpp"
#include "core/mi_explorer.hpp"
#include "sched/list_scheduler.hpp"
#include "util/rng.hpp"

namespace {

using namespace isex;

dfg::Graph random_dag(std::size_t n, std::uint64_t seed) {
  static constexpr isa::Opcode kOps[] = {
      isa::Opcode::kAddu, isa::Opcode::kXor, isa::Opcode::kAnd,
      isa::Opcode::kSrl,  isa::Opcode::kSubu, isa::Opcode::kOr,
  };
  Rng rng(seed);
  dfg::Graph g;
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = g.add_node(kOps[i % std::size(kOps)]);
    int preds = 0;
    if (i > 0) {
      for (int k = 0; k < 2; ++k) {
        if (rng.next_double() < 0.6) {
          const auto p =
              static_cast<dfg::NodeId>(rng.next_below(static_cast<std::uint32_t>(i)));
          if (!g.has_edge(p, v)) {
            g.add_edge(p, v);
            ++preds;
          }
        }
      }
    }
    g.set_extern_inputs(v, preds >= 2 ? 0 : 2 - preds);
  }
  for (dfg::NodeId v = 0; v < g.num_nodes(); ++v)
    if (g.succs(v).empty()) g.set_live_out(v, true);
  return g;
}

void BM_ListSchedule(benchmark::State& state) {
  const dfg::Graph g = random_dag(static_cast<std::size_t>(state.range(0)), 1);
  const sched::ListScheduler sched(sched::MachineConfig::make(2, {6, 3}));
  for (auto _ : state) benchmark::DoNotOptimize(sched.cycles(g));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ListSchedule)->Range(16, 256)->Complexity(benchmark::oNSquared);

void BM_AntWalk(benchmark::State& state) {
  const dfg::Graph g = random_dag(static_cast<std::size_t>(state.range(0)), 2);
  const hw::HwLibrary lib = hw::HwLibrary::paper_default();
  const hw::GPlus gplus(g, lib);
  const core::ExplorerParams params;
  const core::PheromoneState pheromone(gplus, params);
  const core::AntWalk walker(gplus, sched::MachineConfig::make(2, {6, 3}),
                             params);
  const std::vector<double> sp(g.num_nodes(), 1.0);
  Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(walker.run(pheromone, sp, rng));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AntWalk)->Range(16, 256)->Complexity(benchmark::oNSquared);

// Steady-state hot path: same walk, but reusing one WalkScratch the way
// MultiIssueExplorer::explore does — allocation-free after the first walk.
void BM_AntWalkScratchReuse(benchmark::State& state) {
  const dfg::Graph g = random_dag(static_cast<std::size_t>(state.range(0)), 2);
  const hw::HwLibrary lib = hw::HwLibrary::paper_default();
  const hw::GPlus gplus(g, lib);
  const core::ExplorerParams params;
  const core::PheromoneState pheromone(gplus, params);
  const core::AntWalk walker(gplus, sched::MachineConfig::make(2, {6, 3}),
                             params);
  const std::vector<double> sp(g.num_nodes(), 1.0);
  Rng rng(3);
  core::WalkScratch scratch;
  for (auto _ : state)
    benchmark::DoNotOptimize(walker.run(pheromone, sp, rng, scratch));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AntWalkScratchReuse)
    ->Range(16, 256)
    ->Complexity(benchmark::oNSquared);

void BM_MeritUpdate(benchmark::State& state) {
  const dfg::Graph g = random_dag(static_cast<std::size_t>(state.range(0)), 4);
  const hw::HwLibrary lib = hw::HwLibrary::paper_default();
  const hw::GPlus gplus(g, lib);
  const dfg::Reachability reach(g);
  core::ExplorerParams params;
  core::PheromoneState pheromone(gplus, params);
  isa::IsaFormat format;
  format.reg_file = {6, 3};
  const core::MeritEngine engine(gplus, format, params);
  const dfg::PathInfo path =
      dfg::longest_path(g, [&](dfg::NodeId v) { return gplus.software_cycles(v); });
  dfg::NodeSet critical = g.all_nodes();
  std::vector<int> chosen(g.num_nodes(), 1);
  core::MeritInputs inputs;
  inputs.chosen = chosen;
  inputs.critical = &critical;
  inputs.path = &path;
  inputs.tet = static_cast<int>(g.num_nodes());
  for (auto _ : state) {
    engine.update(pheromone, inputs, reach);
    benchmark::ClobberMemory();
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MeritUpdate)->Range(16, 256)->Complexity(benchmark::oNSquared);

void BM_ExploreBlock(benchmark::State& state) {
  const dfg::Graph g = random_dag(static_cast<std::size_t>(state.range(0)), 5);
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  isa::IsaFormat format;
  format.reg_file = machine.reg_file;
  core::ExplorerParams params;
  params.max_iterations = 40;  // bounded for benchmarking
  const core::MultiIssueExplorer explorer(machine, format,
                                          hw::HwLibrary::paper_default(),
                                          params);
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(explorer.explore(g, rng));
  }
}
BENCHMARK(BM_ExploreBlock)->Arg(32)->Arg(64)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  char out_flag[] = "--benchmark_out=BENCH_explorer.json";
  char fmt_flag[] = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
