// Random-DAG generator shared by bench binaries (mirrors the test helper
// without depending on the test tree).
#pragma once

#include "dfg/graph.hpp"
#include "util/rng.hpp"

namespace isex::benchx {

inline dfg::Graph random_dag(std::size_t n, Rng& rng, double edge_prob = 0.6) {
  static constexpr isa::Opcode kOps[] = {
      isa::Opcode::kAddu, isa::Opcode::kXor,  isa::Opcode::kAnd,
      isa::Opcode::kSrl,  isa::Opcode::kSubu, isa::Opcode::kOr,
      isa::Opcode::kSll,  isa::Opcode::kSltu,
  };
  dfg::Graph g;
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = g.add_node(kOps[i % std::size(kOps)], "r" + std::to_string(i));
    int preds = 0;
    if (i > 0) {
      for (int k = 0; k < 2; ++k) {
        if (rng.next_double() < edge_prob) {
          const auto p = static_cast<dfg::NodeId>(
              rng.next_below(static_cast<std::uint32_t>(i)));
          if (!g.has_edge(p, v)) {
            g.add_edge(p, v);
            ++preds;
          }
        }
      }
    }
    g.set_extern_inputs(v, preds >= 2 ? 0 : 2 - preds);
  }
  for (dfg::NodeId v = 0; v < g.num_nodes(); ++v)
    if (g.succs(v).empty()) g.set_live_out(v, true);
  return g;
}

}  // namespace isex::benchx
