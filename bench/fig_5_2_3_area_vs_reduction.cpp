// Regenerates Figure 5.2.3: silicon area cost vs execution-time reduction
// as the number of ISEs grows (1, 2, 4, 8, 16, 32), for MI and SI on the
// (6/3, 2IS) machine, averaged over the seven benchmarks (O3).
//
// The paper's observation: the first ISE dominates the reduction, while
// area keeps climbing — the number of ISEs is not proportional to payoff.
#include <iostream>
#include <vector>

#include "harness_common.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace isex;
  using benchx::ExploredProgram;

  const std::vector<int> kCounts = {1, 2, 4, 8, 16, 32};
  const int repeats = benchx::bench_repeats();
  const auto machine = sched::MachineConfig::make(2, {6, 3});

  std::cout << "Figure 5.2.3: silicon area cost vs execution time reduction\n"
            << "(machine " << machine.label()
            << ", O3, avg over 7 benchmarks, best of " << repeats
            << " explorations)\n\n";

  TablePrinter table;
  table.set_header({"#ISEs", "MI area total (um^2)", "SI area total (um^2)", "MI time red.",
                    "SI time red."});

  const std::vector<ExploredProgram> mi = benchx::explore_programs(
      bench_suite::all_benchmarks(), bench_suite::OptLevel::kO3, machine,
      flow::Algorithm::kMultiIssue, repeats, 29);
  const std::vector<ExploredProgram> si = benchx::explore_programs(
      bench_suite::all_benchmarks(), bench_suite::OptLevel::kO3, machine,
      flow::Algorithm::kSingleIssue, repeats, 29);

  for (const int count : kCounts) {
    flow::SelectionConstraints constraints;
    constraints.max_ises = count;
    std::vector<double> mi_red;
    std::vector<double> si_red;
    double mi_area = 0.0;
    double si_area = 0.0;
    for (std::size_t i = 0; i < mi.size(); ++i) {
      const auto om = benchx::evaluate(mi[i], constraints, machine);
      const auto os = benchx::evaluate(si[i], constraints, machine);
      mi_red.push_back(om.reduction);
      si_red.push_back(os.reduction);
      mi_area += om.area;
      si_area += os.area;
    }
    table.add_row({std::to_string(count), TablePrinter::fmt(mi_area, 1),
                   TablePrinter::fmt(si_area, 1),
                   TablePrinter::pct(summarize(mi_red).mean),
                   TablePrinter::pct(summarize(si_red).mean)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shapes: reduction saturates after the first few "
               "ISEs while area keeps growing; MI spends less area than SI "
               "for equal-or-better reduction.\n";
  benchx::print_runtime_stats(std::cout);
  return 0;
}
