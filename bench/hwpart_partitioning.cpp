// Extension bench (Ch. 6 #2): the ACO machinery retargeted to HW/SW
// partitioning.  Random layered task graphs at several area budgets;
// reports makespan for all-software, all-hardware (budget-blind), the
// ratio-greedy baseline, and the ACO explorer.
#include <iostream>
#include <vector>

#include "hwpart/partition.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace isex;
using namespace isex::hwpart;

TaskGraph random_task_graph(Rng& rng, int n) {
  TaskGraph g;
  for (int i = 0; i < n; ++i) {
    const double sw = 4.0 + rng.next_below(28);
    if (rng.next_double() < 0.75) {
      const double hw1 = std::max(1.0, sw / (2 + rng.next_below(5)));
      const double area1 = 150.0 * (1 + rng.next_below(15));
      if (rng.next_double() < 0.4) {
        const double hw2 = std::max(0.5, hw1 / 2);
        g.add_task("t" + std::to_string(i), sw,
                   {{hw1, area1}, {hw2, area1 * 2.2}});
      } else {
        g.add_task("t" + std::to_string(i), sw, {{hw1, area1}});
      }
    } else {
      g.add_task("t" + std::to_string(i), sw, {});
    }
  }
  for (int i = 1; i < n; ++i) {
    for (int k = 0; k < 2; ++k) {
      if (rng.next_double() < 0.55) {
        g.add_dependence(static_cast<TaskId>(rng.next_below(i)),
                         static_cast<TaskId>(i),
                         static_cast<double>(rng.next_below(4)));
      }
    }
  }
  return g;
}

}  // namespace

int main() {
  std::cout << "Extension: ACO hardware/software partitioning vs baselines\n"
            << "(16 random 20-task graphs per budget; mean makespan, lower "
               "is better)\n\n";

  Rng seed_rng(97);
  std::vector<TaskGraph> graphs;
  for (int i = 0; i < 16; ++i) graphs.push_back(random_task_graph(seed_rng, 20));

  TablePrinter table;
  table.set_header({"budget (area)", "all-sw", "all-hw*", "greedy", "ACO",
                    "ACO area"});
  for (const double budget : {500.0, 1500.0, 4000.0, 12000.0}) {
    std::vector<double> sw_ms, hw_ms, greedy_ms, aco_ms, aco_area;
    for (const TaskGraph& g : graphs) {
      sw_ms.push_back(all_software(g).makespan);
      hw_ms.push_back(all_hardware(g).makespan);
      greedy_ms.push_back(greedy_partition(g, budget).makespan);
      PartitionParams params;
      params.area_budget = budget;
      const PartitionExplorer explorer(params);
      Rng rng(1234);
      const Assignment a = explorer.explore_best_of(g, 3, rng);
      aco_ms.push_back(a.makespan);
      aco_area.push_back(a.hw_area);
    }
    table.add_row({TablePrinter::fmt(budget, 0),
                   TablePrinter::fmt(summarize(sw_ms).mean, 1),
                   TablePrinter::fmt(summarize(hw_ms).mean, 1),
                   TablePrinter::fmt(summarize(greedy_ms).mean, 1),
                   TablePrinter::fmt(summarize(aco_ms).mean, 1),
                   TablePrinter::fmt(summarize(aco_area).mean, 1)});
  }
  table.print(std::cout);
  std::cout << "\n*all-hw ignores the budget (spending upper bound).\n"
            << "Expected shape: ACO <= greedy <= all-sw at every budget; "
               "both approach all-hw as the budget grows.\n";
  return 0;
}
