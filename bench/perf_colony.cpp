// Multi-colony scaling bench: wall clock of a Fig 5.2.1-style exploration
// sweep (7 benchmarks × O3 × MI on the (6/3, 2IS) machine) at colony counts
// {1, 2, 4, 8}, each measured at jobs=1 and jobs=8.  Results — including the
// per-colony-count thread-identity check — land in BENCH_colony.json.
//
// Unlike perf_runtime, explorations here run *top level* on the calling
// thread (no block × repeat fan-out): nested parallel_for inlines serially,
// so the colony epoch fan-out inside MultiIssueExplorer::explore is the only
// pool user and its scaling is what gets measured.
//
// Gates (exit status 1 on failure):
//   * identity — for every colony count the exploration digest at jobs=1
//     must equal the digest at jobs=8.  Always enforced: colonies are a
//     search parameter, never a function of the thread count.
//   * speedup — colonies=8/jobs=8 must beat the serial baseline
//     (colonies=1/jobs=1) by ISEX_BENCH_COLONY_FLOOR (default 2.0x).
//     Enforced only when the host grants >= 4 cores; on smaller hosts the
//     floor result is stamped into the JSON but does not gate.
//
// `--quick` drops to one timing repeat for CI smoke runs; the identity
// check runs at full strength either way.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/mi_explorer.hpp"
#include "harness_common.hpp"
#include "runtime/eval_cache.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace isex;

int timing_repeats(bool quick) {
  if (const char* env = std::getenv("ISEX_BENCH_TIMING_REPEATS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return quick ? 1 : 3;
}

double speedup_floor() {
  if (const char* env = std::getenv("ISEX_BENCH_COLONY_FLOOR")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 2.0;
}

/// FNV-1a over every observable field of an ExplorationResult (mirrors the
/// golden-hash regression tests): any cross-thread-count drift flips it.
struct Fnv1a {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (i * 8)) & 0xffu;
      hash *= 0x100000001b3ULL;
    }
  }
  void mix_int(long long v) { mix(static_cast<std::uint64_t>(v)); }
  void mix_double(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
};

std::uint64_t hash_exploration(const core::ExplorationResult& r) {
  Fnv1a h;
  h.mix_int(r.base_cycles);
  h.mix_int(r.final_cycles);
  h.mix_int(r.rounds);
  h.mix_int(r.total_iterations);
  h.mix_int(static_cast<long long>(r.ises.size()));
  for (const core::ExploredIse& ise : r.ises) {
    h.mix_int(ise.in_count);
    h.mix_int(ise.out_count);
    h.mix_int(ise.gain_cycles);
    h.mix_int(ise.eval.latency_cycles);
    h.mix_double(ise.eval.area);
    h.mix_double(ise.eval.depth_ns);
    ise.original_nodes.for_each([&](dfg::NodeId m) { h.mix_int(m); });
  }
  return h.hash;
}

struct ColonyRun {
  int colonies = 1;
  int jobs = 1;
  std::vector<double> seconds_each;
  std::uint64_t digest = 0;  ///< combined over the sweep's explorations

  double seconds_min() const {
    return *std::min_element(seconds_each.begin(), seconds_each.end());
  }
  double seconds_median() const {
    std::vector<double> s = seconds_each;
    std::sort(s.begin(), s.end());
    const std::size_t n = s.size();
    return n % 2 == 1 ? s[n / 2] : 0.5 * (s[n / 2 - 1] + s[n / 2]);
  }
};

/// One sweep: explore the hottest block of every benchmark serially on this
/// thread (so the colony fan-out is top level), cold cache, fresh pool.
void run_sweep_once(ColonyRun& run) {
  runtime::ThreadPool::set_default_jobs(run.jobs);
  runtime::schedule_cache().clear();
  runtime::schedule_cache().reset_stats();

  const auto machine = sched::MachineConfig::make(2, {6, 3});
  isa::IsaFormat format;
  format.reg_file = machine.reg_file;
  const hw::HwLibrary library = hw::HwLibrary::paper_default();
  core::ExplorerParams params;
  params.colonies = run.colonies;
  const core::MultiIssueExplorer explorer(machine, format, library, params);

  Fnv1a combined;
  const auto start = std::chrono::steady_clock::now();
  for (const bench_suite::Benchmark bm : bench_suite::all_benchmarks()) {
    const flow::ProfiledProgram prog =
        bench_suite::make_program(bm, bench_suite::OptLevel::kO3);
    Rng rng(17);
    const core::ExplorationResult r =
        explorer.explore(prog.blocks.front().graph, rng);
    combined.mix(hash_exploration(r));
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  run.seconds_each.push_back(std::chrono::duration<double>(elapsed).count());
  run.digest = combined.hash;
}

ColonyRun run_sweep(int colonies, int jobs, int repeats) {
  ColonyRun run;
  run.colonies = colonies;
  run.jobs = jobs;
  for (int r = 0; r < repeats; ++r) run_sweep_once(run);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const unsigned hardware = std::thread::hardware_concurrency();
  const int repeats = timing_repeats(quick);
  const double floor = speedup_floor();
  const bool enforce_floor = hardware >= 4;
  std::printf("perf_colony: Fig 5.2.1-style sweep (7 benchmarks, O3, MI), "
              "colonies x jobs grid%s\n", quick ? " [quick]" : "");
  std::printf("hardware_concurrency: %u, timing_repeats: %d, "
              "speedup floor: %.2fx (%s)\n\n",
              hardware, repeats, floor,
              enforce_floor ? "enforced" : "not enforced, < 4 cores");

  const std::vector<int> colony_counts = {1, 2, 4, 8};
  std::vector<ColonyRun> runs;
  for (const int colonies : colony_counts) {
    runs.push_back(run_sweep(colonies, /*jobs=*/1, repeats));
    runs.push_back(run_sweep(colonies, /*jobs=*/8, repeats));
  }
  runtime::ThreadPool::set_default_jobs(0);  // restore auto width

  // Identity gate: per colony count, jobs=1 and jobs=8 digests must match.
  bool identity_ok = true;
  for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
    if (runs[i].digest != runs[i + 1].digest) {
      identity_ok = false;
      std::fprintf(stderr,
                   "IDENTITY VIOLATION: colonies=%d digest differs between "
                   "jobs=1 and jobs=8\n", runs[i].colonies);
    }
  }

  // Headline: colonies=8 at jobs=8 vs the serial baseline (1 colony, 1 job).
  const ColonyRun& serial = runs.front();
  const ColonyRun& parallel = runs.back();
  const double headline = serial.seconds_min() / parallel.seconds_min();

  for (const ColonyRun& run : runs) {
    std::printf("colonies=%d jobs=%d  min %7.3f s  median %7.3f s  "
                "speedup %.2fx  digest %016llx\n",
                run.colonies, run.jobs, run.seconds_min(),
                run.seconds_median(), serial.seconds_min() / run.seconds_min(),
                static_cast<unsigned long long>(run.digest));
  }
  std::printf("\nidentity (jobs=1 == jobs=8 per colony count): %s\n",
              identity_ok ? "yes" : "NO — BUG");
  std::printf("headline: colonies=8/jobs=8 vs serial = %.2fx (floor %.2fx, "
              "%s)\n", headline, floor,
              enforce_floor ? "enforced" : "informational");

  FILE* json = std::fopen("BENCH_colony.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_colony.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"colony_scaling\",\n");
  std::fprintf(json, "  \"sweep\": \"fig_5_2_1_style_7bench_O3_MI_6_3_2IS\",\n");
  std::fprintf(json, "  \"hardware_concurrency\": %u,\n", hardware);
  std::fprintf(json, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(json, "  \"timing_repeats\": %d,\n", repeats);
  std::fprintf(json, "  \"identity_ok\": %s,\n",
               identity_ok ? "true" : "false");
  std::fprintf(json, "  \"speedup_floor\": %.2f,\n", floor);
  std::fprintf(json, "  \"floor_enforced\": %s,\n",
               enforce_floor ? "true" : "false");
  std::fprintf(json, "  \"headline_speedup\": %.3f,\n", headline);
  std::fprintf(json, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ColonyRun& run = runs[i];
    std::fprintf(json,
                 "    {\"colonies\": %d, \"jobs\": %d, \"seconds_each\": [",
                 run.colonies, run.jobs);
    for (std::size_t r = 0; r < run.seconds_each.size(); ++r)
      std::fprintf(json, "%s%.4f", r > 0 ? ", " : "", run.seconds_each[r]);
    std::fprintf(json,
                 "], \"seconds_min\": %.4f, \"seconds_median\": %.4f, "
                 "\"speedup_vs_serial\": %.3f, \"digest\": \"%016llx\"}%s\n",
                 run.seconds_min(), run.seconds_median(),
                 serial.seconds_min() / run.seconds_min(),
                 static_cast<unsigned long long>(run.digest),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_colony.json\n");

  if (!identity_ok) return 1;
  if (enforce_floor && headline < floor) {
    std::fprintf(stderr, "SPEEDUP GATE FAILED: %.2fx < %.2fx floor\n",
                 headline, floor);
    return 1;
  }
  return 0;
}
