#include "harness_common.hpp"

#include <cstdlib>

#include "baseline/si_explorer.hpp"
#include "core/mi_explorer.hpp"
#include "flow/profiling.hpp"
#include "flow/replacement.hpp"
#include "util/rng.hpp"

namespace isex::benchx {

std::vector<sched::MachineConfig> paper_machines() {
  return {
      sched::MachineConfig::make(2, {4, 2}),
      sched::MachineConfig::make(2, {6, 3}),
      sched::MachineConfig::make(3, {6, 3}),
      sched::MachineConfig::make(3, {8, 4}),
      sched::MachineConfig::make(4, {8, 4}),
      sched::MachineConfig::make(4, {10, 5}),
  };
}

ExploredProgram explore_program(bench_suite::Benchmark benchmark,
                                bench_suite::OptLevel level,
                                const sched::MachineConfig& machine,
                                flow::Algorithm algorithm, int repeats,
                                std::uint64_t seed) {
  ExploredProgram out;
  out.program = bench_suite::make_program(benchmark, level);

  const auto costs = flow::profile_blocks(out.program, machine);
  out.hot_blocks = flow::select_hot_blocks(costs, 0.95, 8);

  isa::IsaFormat format;
  format.reg_file = machine.reg_file;

  Rng rng(seed);
  std::vector<core::ExplorationResult> results;
  results.reserve(out.hot_blocks.size());
  if (algorithm == flow::Algorithm::kMultiIssue) {
    const core::MultiIssueExplorer explorer(machine, format,
                                            hw::HwLibrary::paper_default());
    for (const std::size_t bi : out.hot_blocks) {
      results.push_back(explorer.explore_best_of(out.program.blocks[bi].graph,
                                                 repeats, rng));
    }
  } else {
    const baseline::SingleIssueExplorer explorer(
        format, hw::HwLibrary::paper_default());
    for (const std::size_t bi : out.hot_blocks) {
      results.push_back(explorer.explore_best_of(out.program.blocks[bi].graph,
                                                 repeats, rng));
    }
  }
  out.catalog = flow::build_catalog(out.program, out.hot_blocks, results);
  return out;
}

Outcome evaluate(const ExploredProgram& explored,
                 const flow::SelectionConstraints& constraints,
                 const sched::MachineConfig& machine) {
  const flow::SelectionResult selection =
      flow::select_ises(explored.catalog, constraints);
  const flow::ReplacementResult replaced =
      flow::apply_selection(explored.program, selection, machine);
  Outcome o;
  o.base_time = replaced.base_time;
  o.final_time = replaced.final_time;
  o.reduction = replaced.reduction();
  o.area = selection.total_area;
  o.ise_types = selection.num_types;
  return o;
}

int bench_repeats() {
  if (const char* env = std::getenv("ISEX_BENCH_REPEATS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 5;  // §5.1: exploration repeated 5 times per basic block
}

const char* algorithm_tag(flow::Algorithm algorithm) {
  return algorithm == flow::Algorithm::kMultiIssue ? "MI" : "SI";
}

}  // namespace isex::benchx
