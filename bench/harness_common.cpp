#include "harness_common.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>

#include "baseline/si_explorer.hpp"
#include "core/mi_explorer.hpp"
#include "flow/profiling.hpp"
#include "flow/replacement.hpp"
#include "runtime/job_graph.hpp"
#include "runtime/runtime_stats.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace isex::benchx {
namespace {

/// ISEX_TRACE_OUT=file.json turns the global tracer on before main() runs,
/// so every harness captures stage/explorer spans without code changes; the
/// file is written by print_runtime_stats (which every sweep calls last).
[[maybe_unused]] const bool g_tracer_armed = [] {
  if (std::getenv("ISEX_TRACE_OUT") == nullptr) return false;
  trace::Tracer::global().set_enabled(true);
  return true;
}();

}  // namespace

std::vector<sched::MachineConfig> paper_machines() {
  return {
      sched::MachineConfig::make(2, {4, 2}),
      sched::MachineConfig::make(2, {6, 3}),
      sched::MachineConfig::make(3, {6, 3}),
      sched::MachineConfig::make(3, {8, 4}),
      sched::MachineConfig::make(4, {8, 4}),
      sched::MachineConfig::make(4, {10, 5}),
  };
}

namespace {

/// Flat (block × repeat) exploration batch; see flow::run_design_flow for
/// the determinism argument (identical split order to the serial loop).
template <typename Explorer>
std::vector<core::ExplorationResult> explore_blocks(
    const Explorer& explorer, const flow::ProfiledProgram& program,
    const std::vector<std::size_t>& hot_blocks, int repeats, Rng& rng) {
  const auto per_block = static_cast<std::size_t>(repeats);
  std::vector<core::ExplorationResult> attempts = runtime::deterministic_fanout(
      runtime::ThreadPool::default_pool(), rng, hot_blocks.size() * per_block,
      [&](std::size_t job, Rng& child) {
        const std::size_t bi = hot_blocks[job / per_block];
        return explorer.explore(program.blocks[bi].graph, child);
      });
  std::vector<core::ExplorationResult> best;
  best.reserve(hot_blocks.size());
  for (std::size_t b = 0; b < hot_blocks.size(); ++b) {
    const auto begin =
        attempts.begin() + static_cast<std::ptrdiff_t>(b * per_block);
    best.push_back(core::MultiIssueExplorer::pick_best(
        {std::make_move_iterator(begin),
         std::make_move_iterator(begin +
                                 static_cast<std::ptrdiff_t>(per_block))}));
  }
  return best;
}

}  // namespace

ExploredProgram explore_program(bench_suite::Benchmark benchmark,
                                bench_suite::OptLevel level,
                                const sched::MachineConfig& machine,
                                flow::Algorithm algorithm, int repeats,
                                std::uint64_t seed,
                                const core::ExplorerParams& params) {
  ExploredProgram out;
  out.program = bench_suite::make_program(benchmark, level);

  const auto costs = flow::profile_blocks(out.program, machine);
  out.hot_blocks = flow::select_hot_blocks(costs, 0.95, 8);

  isa::IsaFormat format;
  format.reg_file = machine.reg_file;

  Rng rng(seed);
  std::vector<core::ExplorationResult> results;
  if (algorithm == flow::Algorithm::kMultiIssue) {
    const core::MultiIssueExplorer explorer(
        machine, format, hw::HwLibrary::paper_default(), params);
    results = explore_blocks(explorer, out.program, out.hot_blocks, repeats, rng);
  } else {
    const baseline::SingleIssueExplorer explorer(
        format, hw::HwLibrary::paper_default(), params);
    results = explore_blocks(explorer, out.program, out.hot_blocks, repeats, rng);
  }
  out.catalog = flow::build_catalog(out.program, out.hot_blocks, results);
  return out;
}

std::vector<ExploredProgram> explore_programs(
    const std::vector<bench_suite::Benchmark>& benchmarks,
    bench_suite::OptLevel level, const sched::MachineConfig& machine,
    flow::Algorithm algorithm, int repeats, std::uint64_t seed) {
  const runtime::StageTimer timer("explore");
  return runtime::parallel_map(
      runtime::ThreadPool::default_pool(), benchmarks,
      [&](const bench_suite::Benchmark benchmark) {
        // Nested fan-out: explore_blocks inside runs inline on this worker.
        return explore_program(benchmark, level, machine, algorithm, repeats,
                               seed);
      });
}

Outcome evaluate(const ExploredProgram& explored,
                 const flow::SelectionConstraints& constraints,
                 const sched::MachineConfig& machine) {
  const flow::SelectionResult selection =
      flow::select_ises(explored.catalog, constraints);
  const flow::ReplacementResult replaced =
      flow::apply_selection(explored.program, selection, machine);
  Outcome o;
  o.base_time = replaced.base_time;
  o.final_time = replaced.final_time;
  o.reduction = replaced.reduction();
  o.area = selection.total_area;
  o.ise_types = selection.num_types;
  return o;
}

int bench_repeats() {
  if (const char* env = std::getenv("ISEX_BENCH_REPEATS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 5;  // §5.1: exploration repeated 5 times per basic block
}

const char* algorithm_tag(flow::Algorithm algorithm) {
  return algorithm == flow::Algorithm::kMultiIssue ? "MI" : "SI";
}

void print_runtime_stats(std::ostream& out) {
  const runtime::RuntimeStats stats =
      runtime::collect_runtime_stats(runtime::ThreadPool::default_pool());
  out << '\n';
  stats.print(out);

  // Optional file sinks, so any harness doubles as an observability probe:
  //   ISEX_METRICS_OUT=file.prom  Prometheus snapshot of the registry
  //   ISEX_TRACE_OUT=file.json    Chrome trace (tracer armed at startup)
  if (const char* path = std::getenv("ISEX_METRICS_OUT")) {
    stats.publish(trace::MetricsRegistry::global());
    std::ofstream file(path);
    if (file)
      trace::MetricsRegistry::global().write_prometheus(file);
    else
      std::cerr << "cannot write " << path << "\n";
  }
  if (const char* path = std::getenv("ISEX_TRACE_OUT")) {
    std::ofstream file(path);
    if (file)
      trace::Tracer::global().write_chrome_trace(file);
    else
      std::cerr << "cannot write " << path << "\n";
  }
}

}  // namespace isex::benchx
