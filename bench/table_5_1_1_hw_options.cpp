// Regenerates Table 5.1.1: hardware implementation option settings —
// delay (ns) and area (µm²) for every PISA opcode that may enter an ISE.
#include <iostream>

#include "hwlib/hw_library.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace isex;

  std::cout << "Table 5.1.1: Hardware implementation option settings\n"
            << "(0.13 um CMOS @ 100 MHz; software option = 1 cycle, 0 um^2)\n\n";

  const hw::HwLibrary lib = hw::HwLibrary::paper_default();
  TablePrinter table;
  table.set_header({"operation", "option", "delay (ns)", "area (um^2)"});
  for (std::size_t i = 0; i < isa::kOpcodeCount; ++i) {
    const auto op = static_cast<isa::Opcode>(i);
    const auto options = lib.hardware_options(op);
    for (const hw::ImplOption& o : options) {
      table.add_row({std::string(isa::mnemonic(op)), o.name,
                     TablePrinter::fmt(o.delay, 2),
                     TablePrinter::fmt(o.area, 2)});
    }
  }
  table.print(std::cout);
  return 0;
}
