// Ablation: scheduling-priority (SP) functions for Eq. 1's λ·SP term.
//
// The paper uses the child count and explicitly proposes studying other
// priority functions (Ch. 6 future work #1).  This harness compares child
// count, mobility, and transitive descendant count across the suite (O3,
// 2-issue machine): execution-time reduction and ASFU area at a 40 k µm²
// budget.
#include <iostream>

#include "harness_common.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace isex;

benchx::Outcome run_with_priority(bench_suite::Benchmark benchmark,
                                  const sched::MachineConfig& machine,
                                  sched::PriorityKind kind, int repeats) {
  benchx::ExploredProgram explored;
  explored.program =
      bench_suite::make_program(benchmark, bench_suite::OptLevel::kO3);
  const auto costs = flow::profile_blocks(explored.program, machine);
  explored.hot_blocks = flow::select_hot_blocks(costs, 0.95, 8);

  isa::IsaFormat format;
  format.reg_file = machine.reg_file;
  core::ExplorerParams params;
  params.sp_priority = kind;
  const core::MultiIssueExplorer explorer(machine, format,
                                          hw::HwLibrary::paper_default(),
                                          params);
  Rng rng(61);
  std::vector<core::ExplorationResult> results;
  for (const std::size_t bi : explored.hot_blocks) {
    results.push_back(explorer.explore_best_of(
        explored.program.blocks[bi].graph, repeats, rng));
  }
  explored.catalog =
      flow::build_catalog(explored.program, explored.hot_blocks, results);

  flow::SelectionConstraints constraints;
  constraints.area_budget = 40000.0;
  return benchx::evaluate(explored, constraints, machine);
}

const char* kind_name(sched::PriorityKind kind) {
  switch (kind) {
    case sched::PriorityKind::kChildCount: return "children";
    case sched::PriorityKind::kMobility: return "mobility";
    case sched::PriorityKind::kDescendantCount: return "descendants";
  }
  return "?";
}

}  // namespace

int main() {
  const int repeats = benchx::bench_repeats();
  const auto machine = sched::MachineConfig::make(2, {6, 3});

  std::cout << "Ablation: scheduling-priority functions (machine "
            << machine.label() << ", O3, 40000 um^2 budget)\n\n";

  TablePrinter table;
  table.set_header({"benchmark", "children red.", "children area",
                    "mobility red.", "mobility area", "descendants red.",
                    "descendants area"});
  for (const auto benchmark : bench_suite::all_benchmarks()) {
    std::vector<std::string> row{std::string(bench_suite::name(benchmark))};
    for (const auto kind :
         {sched::PriorityKind::kChildCount, sched::PriorityKind::kMobility,
          sched::PriorityKind::kDescendantCount}) {
      const auto outcome = run_with_priority(benchmark, machine, kind, repeats);
      row.push_back(TablePrinter::pct(outcome.reduction));
      row.push_back(TablePrinter::fmt(outcome.area, 0));
      (void)kind_name(kind);
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the three priorities land within a few "
               "percent of each other (the paper's Ch. 6 conjecture that the "
               "priority function matters is worth probing; differences are "
               "modest on these kernels).\n";
  return 0;
}
