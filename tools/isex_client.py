#!/usr/bin/env python3
"""Client for the isex_serve exploration daemon (docs/SERVER.md).

Speaks both halves of the server's protocol: newline-delimited JSON job
submission over a plain TCP socket, and the HTTP metrics/health endpoints.
Stdlib only, so CI and operators can use it anywhere Python 3 runs.

Usage:
    isex_client.py --port P [--host H] submit --kernel K.tac [options]
    isex_client.py --port P [--host H] portfolio --manifest M.txt [options]
    isex_client.py --port P [--host H] metrics
    isex_client.py --port P [--host H] healthz
    isex_client.py --port P [--host H] statusz

Submit options: --id TOKEN --priority N --issue N --ports R/W --repeats N
--seed N --colonies K --merge-interval N --max-ises N --area-budget A
--baseline --cache-config SPEC (memory-hierarchy cost model, docs/MEMORY.md)
--count N (submit the same job N times on one connection — the warm-cache
demo).

Portfolio manifests use the isex_cli format (docs/PORTFOLIO.md): one
`kernel.tac [weight] [name]` row per line, `#` comments, paths relative to
the manifest file.  The portfolio subcommand accepts the same options as
submit except --priority (portfolio jobs carry the manifest instead of a
single kernel).

Exit status: 0 when every response has "ok": true (submit) or HTTP 200
(metrics/healthz), 1 otherwise.  Responses are printed one JSON object per
line, exactly as received.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
from pathlib import Path


def read_line(sock_file):
    line = sock_file.readline()
    if not line:
        raise ConnectionError("server closed the connection")
    return line.decode("utf-8").rstrip("\n")


def apply_common_options(args, request) -> bool:
    """Folds the shared flow options into `request`; False on a bad flag."""
    if args.id:
        request["id"] = args.id
    for field in ("issue", "repeats", "seed", "colonies", "merge_interval"):
        value = getattr(args, field)
        if value is not None:
            request[field] = value
    if args.ports:
        try:
            read_ports, write_ports = (int(p) for p in args.ports.split("/"))
        except ValueError:
            print("isex_client: --ports expects R/W, e.g. 6/3",
                  file=sys.stderr)
            return False
        request["read_ports"] = read_ports
        request["write_ports"] = write_ports
    if args.max_ises is not None:
        request["max_ises"] = args.max_ises
    if args.area_budget is not None:
        request["area_budget"] = args.area_budget
    if args.baseline:
        request["baseline"] = True
    if args.cache_config:
        request["cache_config"] = args.cache_config
    return True


def send_requests(args, request) -> int:
    line = json.dumps(request)
    ok = True
    with socket.create_connection((args.host, args.port),
                                  timeout=args.timeout) as sock:
        sock_file = sock.makefile("rb")
        for _ in range(args.count):
            sock.sendall(line.encode("utf-8") + b"\n")
            response = read_line(sock_file)
            print(response)
            try:
                ok = ok and bool(json.loads(response).get("ok"))
            except json.JSONDecodeError:
                ok = False
    return 0 if ok else 1


def cmd_submit(args) -> int:
    try:
        with open(args.kernel, "r", encoding="utf-8") as f:
            kernel = f.read()
    except OSError as e:
        print(f"isex_client: cannot read {args.kernel}: {e}", file=sys.stderr)
        return 1

    request = {"kernel": kernel}
    if args.priority is not None:
        request["priority"] = args.priority
    if not apply_common_options(args, request):
        return 1
    return send_requests(args, request)


def parse_manifest(path: Path):
    """isex_cli manifest rows: `kernel.tac [weight] [name]`, # comments."""
    programs = []
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(),
                                 start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) > 3:
            raise ValueError(f"{path}:{lineno}: expected "
                             "'kernel.tac [weight] [name]'")
        kernel_path = Path(fields[0])
        if not kernel_path.is_absolute():
            kernel_path = path.parent / kernel_path
        program = {"kernel": kernel_path.read_text(encoding="utf-8")}
        if len(fields) >= 2:
            try:
                weight = float(fields[1])
            except ValueError as err:
                raise ValueError(f"{path}:{lineno}: bad weight "
                                 f"'{fields[1]}'") from err
            if not weight > 0.0:
                raise ValueError(f"{path}:{lineno}: weight must be > 0")
            program["weight"] = weight
        program["name"] = fields[2] if len(fields) == 3 else kernel_path.stem
        programs.append(program)
    if not programs:
        raise ValueError(f"{path}: manifest has no programs")
    return programs


def cmd_portfolio(args) -> int:
    try:
        programs = parse_manifest(Path(args.manifest))
    except (OSError, ValueError) as e:
        print(f"isex_client: {e}", file=sys.stderr)
        return 1
    request = {"programs": programs}
    if not apply_common_options(args, request):
        return 1
    return send_requests(args, request)


def cmd_http(args, path: str) -> int:
    with socket.create_connection((args.host, args.port),
                                  timeout=args.timeout) as sock:
        sock.sendall(f"GET {path} HTTP/1.1\r\nHost: {args.host}\r\n"
                     "Connection: close\r\n\r\n".encode("ascii"))
        raw = b""
        while chunk := sock.recv(65536):
            raw += chunk
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("ascii", "replace")
    sys.stdout.write(body.decode("utf-8", "replace"))
    return 0 if " 200 " in status_line + " " else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--timeout", type=float, default=300.0)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_flow_options(p):
        p.add_argument("--id", default="")
        p.add_argument("--issue", type=int, default=None)
        p.add_argument("--ports", default=None, help="R/W, e.g. 6/3")
        p.add_argument("--repeats", type=int, default=None)
        p.add_argument("--seed", type=int, default=None)
        p.add_argument("--colonies", type=int, default=None)
        p.add_argument("--merge-interval", type=int, default=None,
                       dest="merge_interval")
        p.add_argument("--max-ises", type=int, default=None)
        p.add_argument("--area-budget", type=float, default=None)
        p.add_argument("--baseline", action="store_true")
        p.add_argument("--cache-config", default="", dest="cache_config",
                       help="memory-hierarchy model spec (docs/MEMORY.md), "
                            "e.g. l1_size=4k,l1_ways=2,mem=40")
        p.add_argument("--count", type=int, default=1,
                       help="submit the same job N times (cache demo)")

    submit = sub.add_parser("submit", help="submit an exploration job")
    submit.add_argument("--kernel", required=True, help="TAC kernel file")
    submit.add_argument("--priority", type=int, default=None)
    add_flow_options(submit)

    portfolio = sub.add_parser(
        "portfolio", help="submit a weighted multi-program portfolio job")
    portfolio.add_argument("--manifest", required=True,
                           help="manifest file: kernel.tac [weight] [name]")
    add_flow_options(portfolio)

    sub.add_parser("metrics", help="print the Prometheus snapshot")
    sub.add_parser("healthz", help="print the health probe body")
    sub.add_parser("statusz", help="print the live-introspection JSON")

    args = parser.parse_args()
    try:
        if args.command == "submit":
            return cmd_submit(args)
        if args.command == "portfolio":
            return cmd_portfolio(args)
        return cmd_http(args, f"/{args.command}")
    except (OSError, ConnectionError) as e:
        print(f"isex_client: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
