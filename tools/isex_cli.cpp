// isex — command-line driver for the library.
//
//   isex explore  kernel.tac [options]   explore ISEs and print them
//   isex schedule kernel.tac [options]   print the cycle-by-cycle schedule
//   isex dot      kernel.tac [options]   Graphviz DOT (ISEs highlighted)
//   isex eval     kernel.tac --set v=N   execute the block, print variables
//   isex verilog  kernel.tac [options]   emit Verilog ASFU modules for the
//                                        explored ISEs
//   isex listing  kernel.tac [options]   VLIW listing before/after ISEs
//   isex portfolio --manifest FILE       batched multi-program exploration:
//                                        one ISE set for all programs under
//                                        a shared area budget
//                                        (docs/PORTFOLIO.md)
//   isex sweep    kernel.tac [options]   cache-geometry sweep: explore the
//                                        kernel under an L1 size x ways x
//                                        line-size grid and report how the
//                                        ISE outcome shifts (docs/MEMORY.md)
//
// Common options:
//   --issue N          issue width (default 2)
//   --ports R/W        register-file read/write ports (default 6/3)
//   --repeats N        exploration repeats, best kept (default 5)
//   --seed S           RNG seed (default 1); results are bit-identical for
//                      the same seed at any --jobs value
//   --jobs N           exploration worker threads (default: ISEX_JOBS env
//                      var, else hardware concurrency)
//   --colonies K       ant colonies per exploration round (default 1 = the
//                      paper's serial loop); a search parameter like --seed —
//                      results depend on it, never on --jobs
//   --merge-interval N iterations between colony pheromone merges (default 8)
//   --max-latency N    pipestage cap on ISE latency in cycles (default off)
//   --baseline         use the single-issue (legality-only) explorer
//   --set name=value   bind a live-in (eval only; repeatable; 0x.. ok)
//   --cache-config S   memory-hierarchy cost model (docs/MEMORY.md): derive
//                      each load/store latency from a two-level cache
//                      simulation instead of the fixed 1-cycle charge, e.g.
//                      l1_size=4k,l1_ways=2,l1_line=32,l2_size=64k,mem=40
//
// Sweep options:
//   --sweep-out F      cache-geometry sweep JSON (default
//                      BENCH_cachesweep.json; render with
//                      tools/bench_report.py)
//
// Portfolio options:
//   --manifest FILE    manifest: one `path [weight] [name]` per line,
//                      `#` comments; paths resolve relative to the manifest
//   --area-budget A    shared ASFU area budget, µm² (default unlimited)
//   --max-ises N       shared distinct ISE type budget (default 32)
//
// Observability (docs/OBSERVABILITY.md):
//   --trace-out F        write a Chrome trace_event JSON (open in Perfetto /
//                        chrome://tracing); enables the tracer for the run
//   --metrics-out F      write a Prometheus text-format metrics snapshot
//   --convergence-out F  write the per-iteration ACO convergence curve (CSV)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/si_explorer.hpp"
#include "core/mi_explorer.hpp"
#include "dfg/dot_export.hpp"
#include "dfg/validate.hpp"
#include "exec/evaluator.hpp"
#include "hwlib/hw_library.hpp"
#include "isa/tac_parser.hpp"
#include "flow/listing.hpp"
#include "flow/portfolio.hpp"
#include "mem/cache_model.hpp"
#include "mem/mem_stream.hpp"
#include "rtl/verilog.hpp"
#include "runtime/runtime_stats.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/machine_config.hpp"
#include "trace/metrics.hpp"
#include "trace/telemetry.hpp"
#include "trace/trace.hpp"
#include "util/shutdown.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace isex;

struct CliOptions {
  std::string command;
  std::string input_path;
  int issue = 2;
  int read_ports = 6;
  int write_ports = 3;
  int repeats = 5;
  std::uint64_t seed = 1;
  int jobs = 0;  // 0 = ISEX_JOBS env var, else hardware concurrency
  int colonies = 1;
  int merge_interval = 8;
  int max_latency = 0;
  bool baseline = false;
  std::string manifest;
  double area_budget = -1.0;  // < 0 = unlimited
  int max_ises = 32;
  std::vector<std::pair<std::string, std::uint32_t>> bindings;
  std::string cache_spec;
  std::optional<mem::CacheConfig> cache;
  std::string sweep_out = "BENCH_cachesweep.json";
  std::string trace_out;
  std::string metrics_out;
  std::string convergence_out;
  std::string pool_profile_out;
};

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: isex <explore|schedule|dot|eval|verilog|listing> <kernel.tac> "
               "[--issue N] [--ports R/W]\n"
               "       isex portfolio --manifest FILE [--area-budget A] "
               "[--max-ises N] [common options]\n"
               "       isex sweep <kernel.tac> [--cache-config S] "
               "[--sweep-out F] [common options]\n"
               "            [--repeats N] [--seed S] [--jobs N] "
               "[--colonies K] [--merge-interval N]\n"
               "            [--max-latency N] [--baseline] [--set v=N]\n"
               "            [--trace-out F] [--metrics-out F] "
               "[--convergence-out F]\n"
               "\n"
               "  --seed S  RNG seed; same seed -> same result at any --jobs\n"
               "  --jobs N  exploration worker threads (default: ISEX_JOBS "
               "env var, else hardware concurrency)\n"
               "  --colonies K         ant colonies per round (search "
               "parameter like --seed; default 1 = the paper's serial loop)\n"
               "  --merge-interval N   iterations between colony pheromone "
               "merges (default 8; inert with --colonies 1)\n"
               "  --cache-config S     two-level cache cost model for "
               "load/store latencies (docs/MEMORY.md), e.g.\n"
               "                       l1_size=4k,l1_ways=2,l1_line=32,"
               "l2_size=64k,l2_ways=8,l2_line=64,mem=40\n"
               "  --sweep-out F        sweep command: geometry-sweep JSON "
               "(default BENCH_cachesweep.json)\n"
               "  --trace-out F        Chrome trace_event JSON "
               "(chrome://tracing / Perfetto)\n"
               "  --metrics-out F      Prometheus text metrics snapshot\n"
               "  --convergence-out F  per-iteration ACO convergence CSV\n"
               "  --pool-profile-out F worker occupancy + parallel-section "
               "profile (JSON)\n");
  std::exit(error != nullptr ? 2 : 0);
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  if (argc < 3) return std::nullopt;
  CliOptions opt;
  opt.command = argv[1];
  int first_option = 3;
  if (argv[2][0] == '-' && argv[2][1] == '-') {
    first_option = 2;  // e.g. `isex portfolio --manifest FILE`
  } else {
    opt.input_path = argv[2];
  }
  for (int i = first_option; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--issue") {
      opt.issue = std::atoi(next_value());
      if (opt.issue < 1) usage("--issue must be >= 1");
    } else if (arg == "--ports") {
      const char* v = next_value();
      if (std::sscanf(v, "%d/%d", &opt.read_ports, &opt.write_ports) != 2 ||
          opt.read_ports < 1 || opt.write_ports < 1)
        usage("--ports expects R/W, e.g. 6/3");
    } else if (arg == "--repeats") {
      opt.repeats = std::atoi(next_value());
      if (opt.repeats < 1) usage("--repeats must be >= 1");
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next_value(), nullptr, 0);
    } else if (arg == "--jobs") {
      opt.jobs = std::atoi(next_value());
      if (opt.jobs < 1) usage("--jobs must be >= 1");
    } else if (arg == "--colonies") {
      opt.colonies = std::atoi(next_value());
      if (opt.colonies < 1) usage("--colonies must be >= 1");
    } else if (arg == "--merge-interval") {
      opt.merge_interval = std::atoi(next_value());
      if (opt.merge_interval < 1) usage("--merge-interval must be >= 1");
    } else if (arg == "--max-latency") {
      opt.max_latency = std::atoi(next_value());
    } else if (arg == "--baseline") {
      opt.baseline = true;
    } else if (arg == "--manifest") {
      opt.manifest = next_value();
    } else if (arg == "--area-budget") {
      opt.area_budget = std::strtod(next_value(), nullptr);
      if (opt.area_budget < 0.0) usage("--area-budget must be >= 0");
    } else if (arg == "--max-ises") {
      opt.max_ises = std::atoi(next_value());
      if (opt.max_ises < 0) usage("--max-ises must be >= 0");
    } else if (arg == "--cache-config") {
      opt.cache_spec = next_value();
      Expected<mem::CacheConfig> parsed = mem::parse_cache_config(opt.cache_spec);
      if (!parsed)
        usage(("--cache-config: " + parsed.error().to_string()).c_str());
      opt.cache = *parsed;
    } else if (arg == "--sweep-out") {
      opt.sweep_out = next_value();
    } else if (arg == "--trace-out") {
      opt.trace_out = next_value();
    } else if (arg == "--metrics-out") {
      opt.metrics_out = next_value();
    } else if (arg == "--convergence-out") {
      opt.convergence_out = next_value();
    } else if (arg == "--pool-profile-out") {
      opt.pool_profile_out = next_value();
    } else if (arg == "--set") {
      const std::string binding = next_value();
      const std::size_t eq = binding.find('=');
      if (eq == std::string::npos) usage("--set expects name=value");
      opt.bindings.emplace_back(
          binding.substr(0, eq),
          static_cast<std::uint32_t>(
              std::strtoul(binding.c_str() + eq + 1, nullptr, 0)));
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  return opt;
}

Expected<std::string> read_file(const std::string& path) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(path);
  if (!in) {
    return Error(ErrorCode::kIoFileNotFound, "cannot open '" + path + "'");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string content = ss.str();
  if (content.empty())
    return Error(ErrorCode::kIoEmptyFile, "'" + path + "' is empty");
  return content;
}

/// Prints every diagnostic; returns false when any is error-severity.
bool report_issues(const char* subject, const ValidationReport& report) {
  for (const Error& e : report.issues())
    std::fprintf(stderr, "isex: %s: %s\n", subject, e.to_string().c_str());
  return report.ok();
}

core::ExplorationResult explore(const CliOptions& opt,
                                const dfg::Graph& graph) {
  const auto machine =
      sched::MachineConfig::make(opt.issue, {opt.read_ports, opt.write_ports});
  isa::IsaFormat format;
  format.reg_file = machine.reg_file;
  format.max_ise_latency_cycles = opt.max_latency;
  const hw::HwLibrary library = hw::HwLibrary::paper_default();
  core::ExplorerParams params;
  params.collect_trace = !opt.convergence_out.empty();
  params.colonies = opt.colonies;
  params.merge_interval = opt.merge_interval;
  Rng rng(opt.seed);
  core::ExplorationResult result;
  {
    const runtime::StageTimer timer("exploration");
    if (opt.baseline) {
      const baseline::SingleIssueExplorer explorer(format, library, params);
      result = explorer.explore_best_of(graph, opt.repeats, rng);
    } else {
      const core::MultiIssueExplorer explorer(machine, format, library,
                                              params);
      result = explorer.explore_best_of(graph, opt.repeats, rng);
    }
  }
  if (!opt.convergence_out.empty()) {
    std::ofstream out(opt.convergence_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   opt.convergence_out.c_str());
      std::exit(1);
    }
    // The curve of the best-of attempt that won (deterministic in --seed).
    trace::ExplorationTelemetry::write_csv(out, result.trace);
  }
  return result;
}

int cmd_explore(const CliOptions& opt, const isa::ParsedBlock& block) {
  const auto result = explore(opt, block.graph);
  std::printf("%zu operations, %zu edges; %d-issue %d/%d ports\n",
              block.graph.num_nodes(), block.graph.num_edges(), opt.issue,
              opt.read_ports, opt.write_ports);
  std::printf("cycles: %d without ISEs -> %d with ISEs (%.2f%% reduction)\n",
              result.base_cycles, result.final_cycles,
              result.base_cycles > 0
                  ? 100.0 * (result.base_cycles - result.final_cycles) /
                        result.base_cycles
                  : 0.0);
  TablePrinter table;
  table.set_header({"#", "ops", "latency", "area (um^2)", "IN", "OUT", "gain",
                    "members"});
  for (std::size_t i = 0; i < result.ises.size(); ++i) {
    const auto& ise = result.ises[i];
    std::string members;
    for (const auto& label : ise.member_labels) {
      if (!members.empty()) members += ' ';
      members += label;
    }
    table.add_row({std::to_string(i + 1),
                   std::to_string(ise.original_nodes.count()),
                   std::to_string(ise.eval.latency_cycles),
                   TablePrinter::fmt(ise.eval.area, 1),
                   std::to_string(ise.in_count), std::to_string(ise.out_count),
                   std::to_string(ise.gain_cycles), members});
  }
  std::ostringstream out;
  table.print(out);
  std::fputs(out.str().c_str(), stdout);
  if (result.ises.empty()) std::printf("(no profitable ISE found)\n");
  return 0;
}

/// Cache-model telemetry goes to stderr like the dedup diagnostics: the
/// simulation counters are deterministic, but stdout is reserved for each
/// command's own output contract.
void print_cache_stats(const mem::CacheConfig& config,
                       const mem::CacheStats& stats) {
  std::fprintf(stderr,
               "cache model %s: %llu accesses, %llu L1 hits (%.1f%%), "
               "%llu L2 hits, %llu memory; %llu nodes annotated\n",
               config.label().c_str(),
               static_cast<unsigned long long>(stats.accesses),
               static_cast<unsigned long long>(stats.l1_hits),
               100.0 * stats.l1_hit_rate(),
               static_cast<unsigned long long>(stats.l2_hits),
               static_cast<unsigned long long>(stats.mem_accesses),
               static_cast<unsigned long long>(stats.annotated_nodes));
}

int cmd_schedule(const CliOptions& opt, const isa::ParsedBlock& block) {
  const auto machine =
      sched::MachineConfig::make(opt.issue, {opt.read_ports, opt.write_ports});
  const sched::ListScheduler scheduler(machine);
  const sched::Schedule schedule = scheduler.run(block.graph);
  std::printf("%s: %d cycles\n", machine.label().c_str(), schedule.cycles);
  for (int cycle = 0; cycle < schedule.cycles; ++cycle) {
    std::printf("C%-3d |", cycle + 1);
    for (dfg::NodeId v = 0; v < block.graph.num_nodes(); ++v) {
      if (schedule.slot[v] != cycle) continue;
      const dfg::Node& n = block.graph.node(v);
      std::printf(" %s", std::string(isa::mnemonic(n.opcode)).c_str());
      if (!n.label.empty()) std::printf(":%s", n.label.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_dot(const CliOptions& opt, const isa::ParsedBlock& block) {
  const auto result = explore(opt, block.graph);
  std::vector<dfg::NodeSet> highlights;
  for (const auto& ise : result.ises) highlights.push_back(ise.original_nodes);
  dfg::DotOptions options;
  options.graph_name = "kernel";
  options.highlights = highlights;
  dfg::write_dot(std::cout, block.graph, options);
  return 0;
}

int cmd_verilog(const CliOptions& opt, const isa::ParsedBlock& block) {
  const auto result = explore(opt, block.graph);
  if (result.ises.empty()) {
    std::fprintf(stderr, "no profitable ISE found; nothing to emit\n");
    return 1;
  }
  for (std::size_t i = 0; i < result.ises.size(); ++i) {
    rtl::VerilogOptions options;
    options.module_name = "ise" + std::to_string(i + 1);
    options.evaluation = &result.ises[i].eval;
    std::cout << rtl::emit_asfu(block, result.ises[i].original_nodes, options)
              << "\n";
  }
  return 0;
}

int cmd_listing(const CliOptions& opt, const isa::ParsedBlock& block) {
  const auto machine =
      sched::MachineConfig::make(opt.issue, {opt.read_ports, opt.write_ports});
  const auto result = explore(opt, block.graph);

  // Re-apply the committed ISEs to obtain the rewritten block.
  dfg::Graph rewritten = block.graph;
  std::vector<dfg::NodeId> to_current(block.graph.num_nodes());
  for (dfg::NodeId v = 0; v < block.graph.num_nodes(); ++v) to_current[v] = v;
  for (const auto& ise : result.ises) {
    dfg::NodeSet members(rewritten.num_nodes());
    ise.original_nodes.for_each(
        [&](dfg::NodeId v) { members.insert(to_current[v]); });
    dfg::IseInfo info;
    info.latency_cycles = ise.eval.latency_cycles;
    info.area = ise.eval.area;
    info.num_inputs = ise.in_count;
    info.num_outputs = ise.out_count;
    std::vector<dfg::NodeId> remap;
    rewritten = rewritten.collapse(members, info, &remap);
    for (dfg::NodeId v = 0; v < block.graph.num_nodes(); ++v)
      to_current[v] = remap[to_current[v]];
  }

  std::cout << "--- without ISEs\n";
  flow::write_listing(std::cout, block.graph, machine);
  std::cout << "--- with " << result.ises.size() << " ISE(s)\n";
  flow::write_listing(std::cout, rewritten, machine);
  return 0;
}

/// Cache-geometry sweep (docs/MEMORY.md): re-explores the kernel under an
/// L1 capacity x associativity x line-size grid, holding the L2 and the
/// latency spine from --cache-config (or the defaults).  Each point is a
/// full annotate-then-explore run with the same seed, so rows differ only
/// through the memory model — the sweep shows where the ISE selection is
/// geometry-sensitive.  Results land in a BENCH_*.json for bench_report.py.
int cmd_sweep(const CliOptions& opt, const isa::ParsedBlock& block) {
  const mem::CacheConfig base = opt.cache ? *opt.cache : mem::CacheConfig{};
  const std::uint64_t size_axis[] = {1024, 4096, 16384};
  const int ways_axis[] = {1, 2, 4};
  const int line_axis[] = {16, 32, 64};

  struct Row {
    mem::CacheConfig config;
    mem::CacheStats stats;
    int base_cycles = 0;
    int final_cycles = 0;
    std::size_t num_ises = 0;
  };
  std::vector<Row> rows;
  for (const std::uint64_t size : size_axis) {
    for (const int ways : ways_axis) {
      for (const int line : line_axis) {
        mem::CacheConfig config = base;
        config.l1.size_bytes = size;
        config.l1.ways = ways;
        config.l1.line_bytes = line;
        if (!mem::validate(config).ok()) continue;  // degenerate grid point
        dfg::Graph graph = block.graph;
        const mem::CacheStats stats = mem::annotate_graph(graph, config);
        const core::ExplorationResult result = explore(opt, graph);
        rows.push_back(Row{config, stats, result.base_cycles,
                           result.final_cycles, result.ises.size()});
      }
    }
  }

  const auto machine =
      sched::MachineConfig::make(opt.issue, {opt.read_ports, opt.write_ports});
  std::printf("cache-geometry sweep: %zu points; %s; seed %llu\n", rows.size(),
              machine.label().c_str(),
              static_cast<unsigned long long>(opt.seed));
  TablePrinter table;
  table.set_header({"l1 size", "ways", "line", "l1 hit", "base", "final",
                    "reduction", "ISEs"});
  for (const Row& row : rows) {
    table.add_row(
        {std::to_string(row.config.l1.size_bytes),
         std::to_string(row.config.l1.ways),
         std::to_string(row.config.l1.line_bytes),
         TablePrinter::fmt(100.0 * row.stats.l1_hit_rate(), 1) + "%",
         std::to_string(row.base_cycles), std::to_string(row.final_cycles),
         TablePrinter::fmt(row.base_cycles > 0
                               ? 100.0 * (row.base_cycles - row.final_cycles) /
                                     row.base_cycles
                               : 0.0,
                           2) +
             "%",
         std::to_string(row.num_ises)});
  }
  std::ostringstream text;
  table.print(text);
  std::fputs(text.str().c_str(), stdout);

  std::ofstream out(opt.sweep_out);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", opt.sweep_out.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"cache_sweep\",\n";
  out << "  \"kernel\": \"" << opt.input_path << "\",\n";
  out << "  \"machine\": \"" << machine.label() << "\",\n";
  out << "  \"seed\": " << opt.seed << ",\n";
  out << "  \"repeats\": " << opt.repeats << ",\n";
  out << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.4f", row.stats.l1_hit_rate());
    out << "    {\"l1_size\": " << row.config.l1.size_bytes
        << ", \"l1_ways\": " << row.config.l1.ways
        << ", \"l1_line\": " << row.config.l1.line_bytes
        << ", \"accesses\": " << row.stats.accesses
        << ", \"l1_hits\": " << row.stats.l1_hits
        << ", \"l2_hits\": " << row.stats.l2_hits
        << ", \"mem_accesses\": " << row.stats.mem_accesses
        << ", \"l1_hit_rate\": " << rate
        << ", \"base_cycles\": " << row.base_cycles
        << ", \"final_cycles\": " << row.final_cycles
        << ", \"ises\": " << row.num_ises << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "sweep: wrote %s (%zu rows)\n", opt.sweep_out.c_str(),
               rows.size());
  return 0;
}

/// One parsed manifest row: `path [weight] [name]`.
struct ManifestRow {
  std::string path;
  double weight = 1.0;
  std::string name;
};

/// Parses the portfolio manifest: one program per line, `#` comments and
/// blank lines skipped.  Relative paths resolve against the manifest's own
/// directory, so a manifest checked in next to its kernels stays portable.
Expected<std::vector<ManifestRow>> parse_manifest(const std::string& path,
                                                  const std::string& text) {
  std::string dir;
  const std::size_t slash = path.rfind('/');
  if (slash != std::string::npos) dir = path.substr(0, slash + 1);

  std::vector<ManifestRow> rows;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    ManifestRow row;
    if (!(fields >> row.path)) continue;  // blank / comment-only line
    std::string weight_token;
    if (fields >> weight_token) {
      char* end = nullptr;
      row.weight = std::strtod(weight_token.c_str(), &end);
      if (end == weight_token.c_str() || *end != '\0' || !(row.weight > 0.0))
        return Error(ErrorCode::kFlowParamsInvalid,
                     path + ":" + std::to_string(lineno) + ": weight '" +
                         weight_token + "' must be a number > 0");
      fields >> row.name;
    }
    if (row.name.empty()) {
      // Default name: the path's basename without extension.
      std::string base = row.path;
      const std::size_t s = base.rfind('/');
      if (s != std::string::npos) base.erase(0, s + 1);
      const std::size_t dot = base.rfind('.');
      if (dot != std::string::npos && dot > 0) base.erase(dot);
      row.name = base;
    }
    if (row.path[0] != '/') row.path = dir + row.path;
    rows.push_back(std::move(row));
  }
  if (rows.empty())
    return Error(ErrorCode::kProgramEmpty,
                 "manifest '" + path + "' lists no programs");
  return rows;
}

int cmd_portfolio(const CliOptions& opt) {
  const std::string manifest_path =
      !opt.manifest.empty() ? opt.manifest : opt.input_path;
  if (manifest_path.empty())
    usage("portfolio needs --manifest FILE (or a manifest path argument)");
  Expected<std::string> manifest_text = read_file(manifest_path);
  if (!manifest_text) {
    std::fprintf(stderr, "isex: %s: %s\n", manifest_path.c_str(),
                 manifest_text.error().to_string().c_str());
    return 1;
  }
  Expected<std::vector<ManifestRow>> rows =
      parse_manifest(manifest_path, *manifest_text);
  if (!rows) {
    std::fprintf(stderr, "isex: %s\n", rows.error().to_string().c_str());
    return 1;
  }

  std::vector<flow::PortfolioEntry> entries;
  entries.reserve(rows->size());
  for (const ManifestRow& row : *rows) {
    Expected<std::string> source = read_file(row.path);
    if (!source) {
      std::fprintf(stderr, "isex: %s: %s\n", row.path.c_str(),
                   source.error().to_string().c_str());
      return 1;
    }
    Expected<isa::ParsedBlock> parsed = isa::parse_tac_checked(*source);
    if (!parsed) {
      std::fprintf(stderr, "isex: %s: %s\n", row.path.c_str(),
                   parsed.error().to_string().c_str());
      return 1;
    }
    if (!report_issues(row.path.c_str(), dfg::validate(parsed->graph)))
      return 1;
    flow::PortfolioEntry entry;
    entry.program.name = row.name;
    entry.program.blocks.push_back(
        flow::ProfiledBlock{"kernel", std::move(parsed->graph), 1});
    entry.weight = row.weight;
    entries.push_back(std::move(entry));
  }

  flow::PortfolioConfig config;
  config.base.machine =
      sched::MachineConfig::make(opt.issue, {opt.read_ports, opt.write_ports});
  config.base.params.colonies = opt.colonies;
  config.base.params.merge_interval = opt.merge_interval;
  config.base.repeats = opt.repeats;
  config.base.seed = opt.seed;
  config.base.constraints.max_ises = opt.max_ises;
  if (opt.area_budget >= 0.0)
    config.base.constraints.area_budget = opt.area_budget;
  config.base.algorithm = opt.baseline ? flow::Algorithm::kSingleIssue
                                       : flow::Algorithm::kMultiIssue;
  if (opt.cache) config.base.cache = *opt.cache;
  if (!report_issues("machine config", sched::validate(config.base.machine)))
    return 1;

  Expected<flow::PortfolioResult> result = flow::run_portfolio_flow_checked(
      entries, hw::HwLibrary::paper_default(), config);
  if (!result) {
    std::fprintf(stderr, "isex: %s\n", result.error().to_string().c_str());
    return 1;
  }

  std::printf(
      "%zu programs; %d-issue %d/%d ports; shared budget: %s um^2, %d types\n",
      entries.size(), opt.issue, opt.read_ports, opt.write_ports,
      opt.area_budget >= 0.0 ? TablePrinter::fmt(opt.area_budget, 1).c_str()
                             : "unlimited",
      opt.max_ises);
  std::printf("batch: %llu jobs, %llu deduped\n",
              static_cast<unsigned long long>(result->total_jobs),
              static_cast<unsigned long long>(result->deduped_jobs));
  if (result->cache_modeled && opt.cache)
    print_cache_stats(*opt.cache, result->cache_stats);
  // Hit/miss *counts* are timing-dependent (two workers can race to evaluate
  // the same key and both miss); stdout stays byte-identical at any --jobs,
  // so the cache telemetry goes to stderr like the other diagnostics.
  std::fprintf(
      stderr, "eval dedup hit-rate %.1f%% (%llu hits / %llu misses)\n",
      100.0 * result->eval_cache_stats.hit_rate(),
      static_cast<unsigned long long>(result->eval_cache_stats.hits),
      static_cast<unsigned long long>(result->eval_cache_stats.misses));
  if (result->isomorphic_hot_blocks > 0 || result->isomorphic_candidates > 0)
    std::printf(
        "isomorphic-but-renumbered: %llu hot blocks, %llu candidates "
        "(detected, not value-shared)\n",
        static_cast<unsigned long long>(result->isomorphic_hot_blocks),
        static_cast<unsigned long long>(result->isomorphic_candidates));

  TablePrinter programs;
  programs.set_header({"program", "weight", "base", "final", "reduction",
                       "ISEs", "weighted benefit"});
  for (const flow::PortfolioProgramResult& prog : result->programs) {
    programs.add_row({prog.name, TablePrinter::fmt(prog.weight, 2),
                      std::to_string(prog.base_time()),
                      std::to_string(prog.final_time()),
                      TablePrinter::fmt(100.0 * prog.reduction(), 2) + "%",
                      std::to_string(prog.selection.selected.size()),
                      TablePrinter::fmt(prog.weighted_benefit(), 1)});
  }
  std::ostringstream out;
  programs.print(out);
  std::fputs(out.str().c_str(), stdout);

  std::printf("selected %zu ISE(s), %d type(s), %s um^2 total\n",
              result->selection.selected.size(), result->num_ise_types(),
              TablePrinter::fmt(result->total_area(), 1).c_str());
  if (!result->selection.selected.empty()) {
    TablePrinter table;
    table.set_header({"#", "program", "type", "shared", "area (um^2)", "gain",
                      "weighted benefit"});
    for (std::size_t i = 0; i < result->selection.selected.size(); ++i) {
      const flow::PortfolioSelectedIse& sel = result->selection.selected[i];
      table.add_row({std::to_string(i + 1),
                     result->programs[sel.program_index].name,
                     std::to_string(sel.type_id),
                     sel.hardware_shared ? "yes" : "no",
                     TablePrinter::fmt(sel.entry.ise.eval.area, 1),
                     std::to_string(sel.entry.ise.gain_cycles),
                     TablePrinter::fmt(sel.weighted_benefit, 1)});
    }
    std::ostringstream ises;
    table.print(ises);
    std::fputs(ises.str().c_str(), stdout);
  } else {
    std::printf("(no profitable ISE selected)\n");
  }
  return 0;
}

int cmd_eval(const CliOptions& opt, const isa::ParsedBlock& block) {
  exec::Evaluator evaluator;
  for (const auto& [name, value] : opt.bindings) evaluator.set(name, value);
  try {
    evaluator.run(block);
  } catch (const exec::EvalError& e) {
    std::fprintf(stderr, "evaluation error: %s\n", e.what());
    std::fprintf(stderr, "hint: bind live-ins with --set name=value\n");
    return 1;
  }
  // Print live-out variables first, then the rest, in definition order.
  for (const bool live_pass : {true, false}) {
    for (const auto& stmt : block.statements) {
      if (stmt.dest.empty()) continue;
      const bool is_live = block.graph.live_out(stmt.node);
      if (is_live != live_pass) continue;
      std::printf("%s%-12s = 0x%08x (%u)\n", is_live ? "live-out " : "         ",
                  stmt.dest.c_str(), evaluator.get(stmt.dest),
                  evaluator.get(stmt.dest));
    }
  }
  return 0;
}

}  // namespace

/// Writes the --trace-out / --metrics-out sinks after the command ran.
void write_observability(const CliOptions& opt) {
  if (!opt.trace_out.empty()) {
    std::ofstream out(opt.trace_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", opt.trace_out.c_str());
      std::exit(1);
    }
    trace::Tracer::global().write_chrome_trace(out);
  }
  if (!opt.metrics_out.empty()) {
    std::ofstream out(opt.metrics_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   opt.metrics_out.c_str());
      std::exit(1);
    }
    // Fold the runtime's point-in-time stats (pool width, cache hit rate,
    // stage seconds) into the registry next to the live counters.
    runtime::collect_runtime_stats(runtime::ThreadPool::default_pool())
        .publish(trace::MetricsRegistry::global());
    trace::MetricsRegistry::global().write_prometheus(out);
  }
  if (!opt.pool_profile_out.empty()) {
    std::ofstream out(opt.pool_profile_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   opt.pool_profile_out.c_str());
      std::exit(1);
    }
    const runtime::PoolProfile profile =
        runtime::collect_pool_profile(runtime::ThreadPool::default_pool());
    profile.write_json(out);
    profile.publish(trace::MetricsRegistry::global());
  }
}

int main(int argc, char** argv) {
  const std::optional<CliOptions> opt = parse_args(argc, argv);
  if (!opt) usage();

  // Size the shared exploration pool before any work touches it.  Results
  // are seed-deterministic regardless of the job count.
  if (opt->jobs > 0) runtime::ThreadPool::set_default_jobs(opt->jobs);
  if (!opt->trace_out.empty()) trace::Tracer::global().set_enabled(true);
  if (!opt->pool_profile_out.empty())
    runtime::ThreadPool::default_pool().set_profiling(true);

  // A Ctrl-C mid-exploration must not lose the observability sinks the user
  // asked for: flush whatever the tracer/registry have accumulated so far,
  // then exit with the conventional 128+signo.  (The convergence CSV only
  // exists once an exploration finishes, so an interrupt cannot save it.)
  if (!opt->trace_out.empty() || !opt->metrics_out.empty() ||
      !opt->pool_profile_out.empty()) {
    util::ShutdownRequest::instance().flush_and_exit_on_signal(
        [opt = *opt] { write_observability(opt); });
  }

  // The portfolio command reads a manifest of kernels, not one TAC file, so
  // it owns its whole input path.
  if (opt->command == "portfolio") {
    int rc;
    {
      const trace::ContextScope run_context(
          trace::TraceContext{trace::Tracer::global().enabled()
                                  ? trace::mint_trace_id()
                                  : 0,
                              /*span_id=*/0});
      const trace::Span command_span("isex:portfolio");
      rc = cmd_portfolio(*opt);
    }
    write_observability(*opt);
    return rc;
  }
  if (opt->input_path.empty()) usage("missing <kernel.tac> argument");

  // Input boundary: read → parse (strict) → validate, with structured
  // diagnostics at every step.  A kernel that fails here never reaches the
  // scheduler or the explorer (docs/ROBUSTNESS.md).
  Expected<std::string> source = read_file(opt->input_path);
  if (!source) {
    std::fprintf(stderr, "isex: %s: %s\n", opt->input_path.c_str(),
                 source.error().to_string().c_str());
    return 1;
  }
  Expected<isa::ParsedBlock> parsed = isa::parse_tac_checked(*source);
  if (!parsed) {
    std::fprintf(stderr, "isex: %s: %s\n", opt->input_path.c_str(),
                 parsed.error().to_string().c_str());
    return 1;
  }
  isa::ParsedBlock block = std::move(parsed).value();
  if (!report_issues(opt->input_path.c_str(), dfg::validate(block.graph)))
    return 1;
  // Machine-model diagnostics (warnings for configs outside the paper's
  // sweep; arg parsing already rejects non-positive widths/ports).
  if (!report_issues("machine config",
                     sched::validate(sched::MachineConfig::make(
                         opt->issue, {opt->read_ports, opt->write_ports}))))
    return 1;

  // Memory-hierarchy cost model: annotate the kernel's load/store latencies
  // once, up front, so every command downstream (schedule, explore, listing)
  // sees the same cache-derived costs.  The sweep command annotates per grid
  // point itself.
  if (opt->cache && opt->command != "sweep") {
    flow::ProfiledProgram annotated;
    annotated.name = opt->input_path;
    annotated.blocks.push_back(
        flow::ProfiledBlock{"kernel", std::move(block.graph), 1});
    const mem::CacheStats stats =
        flow::annotate_program(annotated, *opt->cache);
    block.graph = std::move(annotated.blocks[0].graph);
    print_cache_stats(*opt->cache, stats);
  }

  int rc = -1;
  {
    // Root of this run's trace: the command span and everything beneath it
    // (stage spans, pool tasks) share one freshly minted trace id.
    const trace::ContextScope run_context(
        trace::TraceContext{trace::Tracer::global().enabled()
                                ? trace::mint_trace_id()
                                : 0,
                            /*span_id=*/0});
    const trace::Span command_span("isex:" + opt->command);
    if (opt->command == "explore") rc = cmd_explore(*opt, block);
    else if (opt->command == "schedule") rc = cmd_schedule(*opt, block);
    else if (opt->command == "dot") rc = cmd_dot(*opt, block);
    else if (opt->command == "eval") rc = cmd_eval(*opt, block);
    else if (opt->command == "verilog") rc = cmd_verilog(*opt, block);
    else if (opt->command == "listing") rc = cmd_listing(*opt, block);
    else if (opt->command == "sweep") rc = cmd_sweep(*opt, block);
  }
  if (rc < 0) usage(("unknown command '" + opt->command + "'").c_str());
  write_observability(*opt);
  return rc;
}
