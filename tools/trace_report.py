#!/usr/bin/env python3
"""Merge observatory artifacts into one markdown efficiency report.

Inputs (produced by `isex --trace-out/--pool-profile-out` or
`isex_serve --trace-out F --pool-profile-out F`):

  --trace t.json          Chrome trace whose spans carry trace-context ids
                          (args.trace_id/span_id/parent_span_id).  Jobs are
                          the root spans (parent_span_id == 0); every other
                          tagged span nests under one of them.
  --pool-profile p.json   PoolProfile artifact: per-worker busy/idle/steal
                          occupancy, task-duration histogram, and per
                          parallel-section Amdahl numbers.
  --statusz s.json        Optional /statusz snapshot fetched while the
                          server was live (isex_client.py statusz).

Report sections: per-job span breakdown, queue-wait percentiles (from the
`job.queue_wait` spans), top serial sections by Amdahl serial fraction,
worst load imbalance (per-section max-task/mean-task and per-worker busy
spread), and worker occupancy.

Usage:
    python3 tools/trace_report.py --trace t.json --pool-profile p.json \
        [--statusz s.json] [--out REPORT.md]

Exit status: 0 on success (including partially-missing optional inputs),
2 when a provided file cannot be read or parsed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def fmt(x, digits=3):
    if isinstance(x, bool):
        return "yes" if x else "no"
    if isinstance(x, float):
        return f"{x:,.{digits}f}"
    if isinstance(x, int):
        return f"{x:,}"
    return str(x)


def table(headers, rows):
    out = ["| " + " | ".join(headers) + " |",
           "| " + " | ".join("---" for _ in headers) + " |"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out) + "\n"


def percentile(sorted_values, p):
    """Nearest-rank percentile over an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(1, round(p / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def load_json(path):
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        print(f"trace_report: cannot load {path}: {err}", file=sys.stderr)
        return None


def tagged_spans(trace_doc):
    """Complete spans carrying trace-context ids, as (event, args) pairs."""
    spans = []
    for e in trace_doc.get("traceEvents", []):
        args = e.get("args")
        if (isinstance(e, dict) and e.get("ph") == "X"
                and isinstance(args, dict) and args.get("span_id")):
            spans.append((e, args))
    return spans


def render_jobs(spans):
    """Per-root-span breakdown: every trace groups under its root."""
    roots = [(e, a) for e, a in spans if a.get("parent_span_id") == 0]
    by_trace = {}
    for e, a in spans:
        by_trace.setdefault(a.get("trace_id"), []).append((e, a))
    rows = []
    for e, a in sorted(roots, key=lambda ea: ea[0].get("ts", 0)):
        family = by_trace.get(a.get("trace_id"), [])
        children = len(family) - 1
        wait = next((c.get("dur", 0) for c, ca in family
                     if c.get("name") == "job.queue_wait"), None)
        rows.append((e.get("name", "?"), fmt(a.get("trace_id")),
                     fmt(e.get("dur", 0) / 1e3, 2),
                     "-" if wait is None else fmt(wait / 1e3, 2),
                     fmt(children)))
    if not rows:
        return ("_No root spans (parent_span_id == 0) in the trace — was "
                "tracing enabled end to end?_\n")
    lines = [f"{len(rows)} jobs (root spans), "
             f"{len(spans)} context-tagged spans total.\n",
             table(["job", "trace id", "duration ms", "queue wait ms",
                    "child spans"], rows)]
    return "\n".join(lines)


def render_queue_wait(spans):
    waits = sorted(e.get("dur", 0) for e, a in spans
                   if e.get("name") == "job.queue_wait")
    if not waits:
        return ("_No `job.queue_wait` spans — the trace does not come from "
                "a server run, or no job ever waited in the queue._\n")
    rows = [(f"p{p}", fmt(percentile(waits, p) / 1e3, 3))
            for p in (50, 90, 99)]
    rows.append(("max", fmt(waits[-1] / 1e3, 3)))
    return (f"Queue-wait distribution over {len(waits)} jobs "
            "(admission to worker pop):\n\n"
            + table(["percentile", "wait ms"], rows))


def render_serial_sections(profile):
    sections = sorted(profile.get("sections", []),
                      key=lambda s: s.get("serial_fraction", 0.0),
                      reverse=True)
    if not sections:
        return ("_No parallel sections recorded — was pool profiling "
                "enabled?_\n")
    rows = [(f"`{s.get('name', '?')}`", fmt(s.get("invocations", 0)),
             fmt(s.get("tasks", 0)),
             fmt(s.get("serial_fraction", 0.0), 4),
             fmt(s.get("serial_seconds", 0.0), 4),
             fmt(s.get("wall_seconds", 0.0), 4))
            for s in sections]
    lines = ["Amdahl attribution per `deterministic_fanout` call site: "
             "`serial_fraction = serial / (serial + wall)`, where serial is "
             "the un-parallelizable split/setup work on the calling "
             "thread.  Sections are sorted worst first — the top entry is "
             "the best target for shrinking serial work.\n",
             table(["section", "invocations", "tasks", "serial fraction",
                    "serial s", "parallel wall s"], rows)]
    return "\n".join(lines)


def render_imbalance(profile):
    lines = []
    sections = sorted((s for s in profile.get("sections", [])
                       if s.get("tasks", 0) > 0),
                      key=lambda s: s.get("imbalance", 0.0), reverse=True)
    if sections:
        rows = [(f"`{s.get('name', '?')}`", fmt(s.get("imbalance", 0.0), 3),
                 fmt(s.get("max_task_seconds", 0.0) * 1e3, 3),
                 fmt(s.get("task_seconds", 0.0)
                     / max(1, s.get("tasks", 1)) * 1e3, 3))
                for s in sections]
        lines.append("Per-section imbalance (`max task / mean task`; 1.0 is "
                     "perfectly balanced — a high value means one straggler "
                     "task bounds the section's wall time):\n")
        lines.append(table(["section", "imbalance", "max task ms",
                            "mean task ms"], rows))
    busy = [w.get("busy_seconds", 0.0) for w in profile.get("workers", [])
            if w.get("worker") != "external" and w.get("tasks", 0) > 0]
    if busy:
        spread = max(busy) / max(min(busy), 1e-12)
        lines.append(f"\nWorker busy-time spread: max/min = {fmt(spread, 2)} "
                     f"across {len(busy)} active workers "
                     f"({fmt(min(busy), 4)}s .. {fmt(max(busy), 4)}s busy).")
    if not lines:
        return "_No per-task profile data recorded._\n"
    return "\n".join(lines)


def render_workers(profile):
    workers = profile.get("workers", [])
    if not workers:
        return "_No worker occupancy data._\n"
    rows = [(w.get("worker", "?"), fmt(w.get("tasks", 0)),
             fmt(w.get("steals", 0)), fmt(w.get("busy_seconds", 0.0), 4),
             fmt(w.get("idle_seconds", 0.0), 4),
             fmt(w.get("occupancy", 0.0), 3))
            for w in workers]
    pool = profile.get("pool", {})
    lines = [f"Pool: {pool.get('threads', '?')} worker threads, "
             f"{fmt(pool.get('task_count', 0))} profiled tasks, "
             f"{fmt(pool.get('task_seconds_total', 0.0), 4)}s total task "
             "time.  The `external` row aggregates tasks run inline by "
             "non-pool threads helping a fan-out.\n",
             table(["worker", "tasks", "steals", "busy s", "idle s",
                    "occupancy"], rows)]
    return "\n".join(lines)


def render_statusz(status):
    jobs = status.get("jobs", {})
    cache = status.get("cache", {})
    rows = [("uptime s", fmt(status.get("uptime_us", 0) / 1e6, 1)),
            ("jobs accepted", fmt(jobs.get("accepted", 0))),
            ("jobs completed", fmt(jobs.get("completed", 0))),
            ("jobs failed", fmt(jobs.get("failed", 0))),
            ("cache hits", fmt(jobs.get("cache_hits", 0))),
            ("cache misses", fmt(jobs.get("cache_misses", 0))),
            ("warm-start schedule entries",
             fmt(cache.get("warm_start_schedule_entries", 0))),
            ("corrupt log entries skipped",
             fmt(cache.get("corrupt_skipped", 0)))]
    return table(["statusz", "value"], rows)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace JSON with context ids")
    parser.add_argument("--pool-profile", help="PoolProfile JSON artifact")
    parser.add_argument("--statusz", help="optional /statusz snapshot")
    parser.add_argument("--out", default="-",
                        help="output markdown path (default: stdout)")
    args = parser.parse_args()
    if not (args.trace or args.pool_profile):
        parser.error("nothing to report on — pass --trace and/or "
                     "--pool-profile")

    sections = ["# Exploration efficiency report\n"]
    failed = False
    if args.trace:
        doc = load_json(args.trace)
        if doc is None:
            failed = True
        else:
            spans = tagged_spans(doc)
            sections.append("## Jobs\n")
            sections.append(render_jobs(spans))
            sections.append("## Queue-wait percentiles\n")
            sections.append(render_queue_wait(spans))
    if args.pool_profile:
        profile = load_json(args.pool_profile)
        if profile is None:
            failed = True
        else:
            sections.append("## Top serial sections\n")
            sections.append(render_serial_sections(profile))
            sections.append("## Load imbalance\n")
            sections.append(render_imbalance(profile))
            sections.append("## Worker occupancy\n")
            sections.append(render_workers(profile))
    if args.statusz:
        status = load_json(args.statusz)
        if status is None:
            failed = True
        else:
            sections.append("## Server snapshot\n")
            sections.append(render_statusz(status))
    if failed:
        return 2

    report = "\n".join(sections)
    if args.out == "-":
        sys.stdout.write(report)
    else:
        try:
            Path(args.out).write_text(report)
        except OSError as err:
            print(f"trace_report: cannot write --out {args.out}: {err}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
