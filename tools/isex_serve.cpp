// isex_serve — exploration-as-a-service daemon (docs/SERVER.md).
//
//   isex_serve [--port P] [--host H] [--cache-file F] [--queue N]
//              [--workers N] [--jobs N] [--trace-out F]
//              [--pool-profile-out F]
//
//   --port P        TCP port (default 7421; 0 binds an ephemeral port —
//                   the actual port is printed on the "listening on" line)
//   --host H        bind address (default 127.0.0.1)
//   --cache-file F  persistent evaluation/result log; warm-started at boot,
//                   appended while serving (default: no persistence)
//   --queue N       admission-queue bound; jobs beyond it are rejected with
//                   E0602 (default 64)
//   --workers N     concurrent exploration jobs (default min(4, jobs))
//   --jobs N        exploration thread-pool width (default: ISEX_JOBS env
//                   var, else hardware concurrency)
//   --trace-out F   enable the global tracer for the server's lifetime and
//                   write the Chrome trace (every span parented under its
//                   job's trace id) to F at drain
//   --pool-profile-out F  write the PoolProfile JSON artifact (worker
//                   occupancy, task histogram, per-section Amdahl numbers)
//                   to F at drain
//
// Protocol: newline-delimited JSON jobs plus HTTP GET /metrics, /healthz
// and /statusz on the same port.  SIGINT/SIGTERM drain gracefully: queued
// and in-flight jobs finish, new submissions get E0603, the cache log is
// flushed, observability artifacts are written, and the process exits 0.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include <poll.h>

#include "runtime/pool_profile.hpp"
#include "runtime/thread_pool.hpp"
#include "server/server.hpp"
#include "trace/trace.hpp"
#include "util/shutdown.hpp"

namespace {

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: isex_serve [--port P] [--host H] [--cache-file F]\n"
               "                  [--queue N] [--workers N] [--jobs N]\n"
               "                  [--trace-out F] [--pool-profile-out F]\n"
               "\n"
               "  --port 0 binds an ephemeral port (printed at startup)\n"
               "  --cache-file F  persist evaluations/results across runs\n"
               "  --trace-out F   Chrome trace of every job, written at drain\n"
               "  --pool-profile-out F  pool occupancy artifact at drain\n"
               "  SIGINT/SIGTERM drain gracefully and exit 0\n");
  std::exit(error != nullptr ? 2 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace isex;

  server::ServerOptions options;
  options.port = 7421;
  int jobs = 0;
  std::string trace_path;
  std::string pool_profile_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--port") {
      const int port = std::atoi(next_value());
      if (port < 0 || port > 65535) usage("--port must be in [0, 65535]");
      options.port = static_cast<std::uint16_t>(port);
    } else if (arg == "--host") {
      options.host = next_value();
    } else if (arg == "--cache-file") {
      options.cache_path = next_value();
    } else if (arg == "--queue") {
      const int queue = std::atoi(next_value());
      if (queue < 1) usage("--queue must be >= 1");
      options.queue_capacity = static_cast<std::size_t>(queue);
    } else if (arg == "--workers") {
      options.workers = std::atoi(next_value());
      if (options.workers < 1) usage("--workers must be >= 1");
    } else if (arg == "--jobs") {
      jobs = std::atoi(next_value());
      if (jobs < 1) usage("--jobs must be >= 1");
    } else if (arg == "--trace-out") {
      trace_path = next_value();
    } else if (arg == "--pool-profile-out") {
      pool_profile_path = next_value();
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  if (jobs > 0) runtime::ThreadPool::set_default_jobs(jobs);
  if (!trace_path.empty()) trace::Tracer::global().set_enabled(true);

  util::ShutdownRequest& shutdown = util::ShutdownRequest::instance();
  shutdown.install();

  server::Server server(options);
  const Expected<std::uint16_t> port = server.start();
  if (!port) {
    std::fprintf(stderr, "isex_serve: %s\n", port.error().to_string().c_str());
    return 1;
  }
  // Scrapeable startup line (tests and tools/isex_client.py parse it).
  std::printf("isex_serve: listening on %s:%u\n", options.host.c_str(),
              static_cast<unsigned>(*port));
  std::fflush(stdout);

  // Park until a signal, then drain.
  pollfd pfd{shutdown.wait_fd(), POLLIN, 0};
  while (!shutdown.requested()) {
    if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) break;
  }
  std::printf("isex_serve: signal %d, draining...\n",
              shutdown.signal_number());
  std::fflush(stdout);
  server.request_drain();
  const int rc = server.wait();
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (out) {
      trace::Tracer::global().write_chrome_trace(out);
      std::printf("isex_serve: wrote trace to %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "isex_serve: cannot write --trace-out %s\n",
                   trace_path.c_str());
    }
  }
  if (!pool_profile_path.empty()) {
    std::ofstream out(pool_profile_path);
    if (out) {
      const runtime::PoolProfile profile =
          runtime::collect_pool_profile(runtime::ThreadPool::default_pool());
      profile.write_json(out);
      profile.publish(trace::MetricsRegistry::global());
      std::printf("isex_serve: wrote pool profile to %s\n",
                  pool_profile_path.c_str());
    } else {
      std::fprintf(stderr,
                   "isex_serve: cannot write --pool-profile-out %s\n",
                   pool_profile_path.c_str());
    }
  }
  std::printf("isex_serve: drained, exiting\n");
  return rc;
}
