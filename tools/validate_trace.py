#!/usr/bin/env python3
"""Validate the observability artifacts `isex` and the bench harnesses emit.

Checks three file kinds (each optional — pass what you have):

  --trace t.json        Chrome trace_event JSON: well-formed JSON, a
                        `traceEvents` list of events whose required keys and
                        `ph` phases are sane, timestamps non-negative.  Spans
                        tagged with trace-context ids (args.trace_id /
                        span_id / parent_span_id) are additionally checked
                        for propagation: unique span ids, no orphan parents,
                        children sharing their parent's trace id, and a root
                        span per trace.
  --metrics m.prom      Prometheus text exposition: parseable lines, `# TYPE`
                        before first sample of a family, histogram bucket
                        counts cumulative and consistent with _count, and the
                        core isex_* families present.
  --convergence c.csv   Convergence curve CSV: exact header, numeric rows,
                        per-(round, colony) best_tet non-increasing,
                        probabilities in [0, 1].

Exit code 0 iff every provided file validates.  CI runs this against a real
`isex explore` invocation; see docs/OBSERVABILITY.md.
"""

import argparse
import csv
import json
import sys

EXPECTED_CSV_HEADER = (
    "round,colony,iteration,tet,best_tet,worst_tet,mean_tet,"
    "converged_fraction,entropy,max_option_probability,p_end,ants,"
    "cache_hit_rate"
)

# Metric families every exploration run must populate (tools/isex explore
# with --metrics-out, or any bench harness with ISEX_METRICS_OUT).
REQUIRED_METRIC_FAMILIES = [
    "isex_ant_walks_total",
    "isex_ant_walk_tet_cycles",
    "isex_aco_iterations_per_round",
    "isex_pool_jobs_total",
    "isex_schedule_cache_hits_total",
    "isex_schedule_cache_misses_total",
    "isex_stage_seconds_total",
]

VALID_PHASES = {"X", "i", "C", "B", "E", "M"}


def fail(errors, message):
    errors.append(message)


def validate_trace(path, errors):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(errors, f"{path}: cannot read trace file: {e}")
        return
    except json.JSONDecodeError as e:
        fail(errors, f"{path}: not valid JSON (truncated write?): {e}")
        return
    if not isinstance(doc, dict):
        fail(errors, f"{path}: top level is {type(doc).__name__}, not an "
                     "object with 'traceEvents'")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(errors, f"{path}: missing 'traceEvents' list")
        return
    if not events:
        fail(errors, f"{path}: traceEvents is empty — tracer never recorded")
        return
    phases = set()
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(errors, f"{path}: event {i} is {type(e).__name__}, not an "
                         f"object: {e!r}")
            return
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in e:
                fail(errors, f"{path}: event {i} lacks '{key}': {e}")
                return
        if e["ph"] not in VALID_PHASES:
            fail(errors, f"{path}: event {i} has unknown phase {e['ph']!r}")
            return
        ts, dur = e["ts"], e.get("dur", 0)
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            fail(errors, f"{path}: event {i} has non-numeric ts: {ts!r}")
            return
        if e["ph"] == "X" and (not isinstance(dur, (int, float))
                               or isinstance(dur, bool)):
            fail(errors, f"{path}: event {i} has non-numeric dur: {dur!r}")
            return
        if ts < 0 or (e["ph"] == "X" and dur < 0):
            fail(errors, f"{path}: event {i} has negative time: {e}")
            return
        phases.add(e["ph"])
    if "X" not in phases:
        fail(errors, f"{path}: no complete spans (ph=X) — stage/explorer "
                     "instrumentation missing")
    contexts = validate_trace_contexts(path, events, errors)
    print(f"{path}: OK ({len(events)} events, phases {sorted(phases)}, "
          f"{contexts} context-tagged spans)")


def validate_trace_contexts(path, events, errors):
    """Checks trace-context propagation on spans carrying id args.

    Spans recorded under an active TraceContext export
    args.{trace_id,span_id,parent_span_id}.  For those: span ids must be
    unique, every nonzero parent_span_id must name a recorded span, a child
    must share its parent's trace id, and every trace must have at least one
    root span (parent_span_id == 0).  Returns the number of tagged spans.
    """
    tagged = []
    for i, e in enumerate(events):
        args = e.get("args")
        if e.get("ph") != "X" or not isinstance(args, dict) \
                or "span_id" not in args:
            continue
        for key in ("trace_id", "span_id", "parent_span_id"):
            v = args.get(key)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                fail(errors, f"{path}: event {i} ({e.get('name')!r}) has "
                             f"non-integer args.{key}: {v!r}")
                return 0
        if args["span_id"] == 0:
            fail(errors, f"{path}: event {i} ({e.get('name')!r}) exports "
                         "span_id 0 — ids are minted from 1")
            return 0
        tagged.append((i, e, args))
    if not tagged:
        return 0
    by_span = {}
    for i, e, args in tagged:
        if args["span_id"] in by_span:
            fail(errors, f"{path}: span_id {args['span_id']} recorded twice "
                         f"(events {by_span[args['span_id']][0]} and {i})")
            return 0
        by_span[args["span_id"]] = (i, e, args)
    roots_by_trace = {}
    for i, e, args in tagged:
        parent = args["parent_span_id"]
        if parent == 0:
            roots_by_trace.setdefault(args["trace_id"], []).append(i)
            continue
        if parent not in by_span:
            fail(errors, f"{path}: event {i} ({e.get('name')!r}) is an "
                         f"orphan — parent span {parent} was never recorded")
            continue
        parent_args = by_span[parent][2]
        if parent_args["trace_id"] != args["trace_id"]:
            fail(errors, f"{path}: event {i} ({e.get('name')!r}) has "
                         f"trace_id {args['trace_id']} but its parent span "
                         f"{parent} has trace_id {parent_args['trace_id']}")
    for i, e, args in tagged:
        if args["trace_id"] != 0 and args["trace_id"] not in roots_by_trace:
            fail(errors, f"{path}: trace {args['trace_id']} has spans (e.g. "
                         f"event {i}, {e.get('name')!r}) but no root span "
                         "with parent_span_id 0")
            break
    return len(tagged)


def parse_prometheus(path, errors):
    """Returns {family: [(labels_str, value)]} or None on parse failure."""
    samples = {}
    typed = set()
    try:
        lines = open(path, encoding="utf-8").read().splitlines()
    except OSError as e:
        fail(errors, f"{path}: {e}")
        return None
    for n, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram"):
                fail(errors, f"{path}:{n}: malformed TYPE line: {line}")
                return None
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            fail(errors, f"{path}:{n}: malformed sample: {line}")
            return None
        try:
            value = float(value_part)
        except ValueError:
            fail(errors, f"{path}:{n}: non-numeric value: {line}")
            return None
        name, _, labels = name_part.partition("{")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
                break
        if base not in typed:
            fail(errors, f"{path}:{n}: sample before its # TYPE line: {line}")
            return None
        samples.setdefault(name, []).append((labels.rstrip("}"), value))
    return samples


def validate_metrics(path, errors):
    samples = parse_prometheus(path, errors)
    if samples is None:
        return
    for family in REQUIRED_METRIC_FAMILIES:
        hits = [n for n in samples
                if n == family or n.startswith(family + "_")
                or n.startswith(family + "{")]
        if not hits:
            fail(errors, f"{path}: required metric family '{family}' absent")
    # Histogram sanity: buckets cumulative, +Inf bucket == _count.
    for name in [n for n in samples if n.endswith("_bucket")]:
        base = name[: -len("_bucket")]
        per_series = {}
        for labels, value in samples[name]:
            le = [kv for kv in labels.split(",") if kv.startswith("le=")]
            rest = ",".join(kv for kv in labels.split(",")
                            if not kv.startswith("le="))
            if not le:
                fail(errors, f"{path}: {name} sample without le label")
                return
            per_series.setdefault(rest, []).append(
                (float("inf") if le[0] == 'le="+Inf"'
                 else float(le[0][4:-1]), value))
        for rest, buckets in per_series.items():
            buckets.sort()
            values = [v for _, v in buckets]
            if values != sorted(values):
                fail(errors, f"{path}: {name}{{{rest}}} buckets not "
                             f"cumulative: {values}")
            count = dict(samples.get(base + "_count", []))
            if rest in count and buckets[-1][1] != count[rest]:
                fail(errors, f"{path}: {name}{{{rest}}} +Inf bucket "
                             f"{buckets[-1][1]} != _count {count[rest]}")
    print(f"{path}: OK ({len(samples)} series)")


def validate_convergence(path, errors):
    try:
        with open(path, encoding="utf-8", newline="") as f:
            reader = csv.reader(f)
            header = next(reader, None)
            if header is None or ",".join(header) != EXPECTED_CSV_HEADER:
                fail(errors, f"{path}: header mismatch: {header}")
                return
            rows = list(reader)
    except OSError as e:
        fail(errors, f"{path}: {e}")
        return
    if not rows:
        fail(errors, f"{path}: no data rows — was collect_trace enabled?")
        return
    # best_tet is monotone per (round, colony): each colony's chain carries
    # its own incumbent best ant, so curves from different colonies of the
    # same round interleave freely in the file.
    best_by_chain = {}
    rounds = set()
    for n, row in enumerate(rows, 2):
        if len(row) != len(header):
            fail(errors, f"{path}:{n}: expected {len(header)} fields")
            return
        try:
            rec = dict(zip(header, (float(v) for v in row)))
        except ValueError:
            fail(errors, f"{path}:{n}: non-numeric field: {row}")
            return
        for prob in ("converged_fraction", "max_option_probability", "p_end",
                     "cache_hit_rate"):
            if not 0.0 <= rec[prob] <= 1.0:
                fail(errors, f"{path}:{n}: {prob}={rec[prob]} outside [0,1]")
                return
        chain = (rec["round"], rec["colony"])
        if rec["best_tet"] > best_by_chain.get(chain, float("inf")):
            fail(errors, f"{path}:{n}: best_tet increased within "
                         "round/colony chain")
            return
        best_by_chain[chain] = rec["best_tet"]
        rounds.add(rec["round"])
    print(f"{path}: OK ({len(rows)} points, {len(rounds)} rounds, "
          f"{len(best_by_chain)} chains)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace JSON to validate")
    parser.add_argument("--metrics", help="Prometheus snapshot to validate")
    parser.add_argument("--convergence", help="convergence CSV to validate")
    args = parser.parse_args()
    if not (args.trace or args.metrics or args.convergence):
        parser.error("nothing to validate — pass --trace/--metrics/"
                     "--convergence")
    errors = []
    if args.trace:
        validate_trace(args.trace, errors)
    if args.metrics:
        validate_metrics(args.metrics, errors)
    if args.convergence:
        validate_convergence(args.convergence, errors)
    for message in errors:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
