#!/usr/bin/env python3
"""Merge every BENCH_*.json in a directory into one markdown summary.

Each perf harness writes its own JSON (BENCH_antwalk.json,
BENCH_candidates.json, BENCH_runtime.json, google-benchmark outputs like
BENCH_explorer.json, ...).  CI runs them in separate steps, so this script is
the one place their numbers come together — the merged report is uploaded as
a build artifact and is the first thing to read when a perf gate trips.

Usage:
    python3 tools/bench_report.py [--dir BUILD_DIR] [--out REPORT.md]

Writes markdown to --out (default stdout).  Unknown JSON shapes degrade to a
key/value listing of their top-level scalars rather than failing, so adding a
new bench never breaks the report step.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def fmt(x, digits=2):
    if isinstance(x, bool):
        return "yes" if x else "no"
    if isinstance(x, float):
        return f"{x:,.{digits}f}"
    if isinstance(x, int):
        return f"{x:,}"
    return str(x)


def table(headers, rows):
    out = ["| " + " | ".join(headers) + " |",
           "| " + " | ".join("---" for _ in headers) + " |"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out) + "\n"


def render_antwalk(data):
    lines = ["Optimized ant walk vs pre-optimization reference "
             f"({data.get('walks_per_dfg', '?')} walks per DFG"
             f"{', quick' if data.get('quick') else ''}).\n"]
    rows = [(b["name"], fmt(b["nodes"]),
             fmt(b["reference_walks_per_sec"], 0),
             fmt(b["optimized_walks_per_sec"], 0),
             fmt(b["speedup"]) + "x",
             fmt(b["optimized_allocs_per_walk"], 3),
             fmt(b["identical"]))
            for b in data.get("benchmarks", [])]
    t = data.get("total", {})
    if t:
        rows.append(("**total**", "", fmt(t["reference_walks_per_sec"], 0),
                     fmt(t["optimized_walks_per_sec"], 0),
                     fmt(t["speedup"]) + "x",
                     fmt(t["optimized_allocs_per_walk"], 3),
                     fmt(t["identical"])))
    lines.append(table(["DFG", "nodes", "ref walks/s", "opt walks/s",
                        "speedup", "allocs/walk", "identical"], rows))
    return "\n".join(lines)


def render_candidates(data):
    lines = ["Copy-free candidate evaluation (CollapsedView + scheduler "
             "scratch) vs collapse-and-schedule reference "
             f"({data.get('passes_per_case', '?')} passes per case"
             f"{', quick' if data.get('quick') else ''}).\n"]
    rows = [(b["name"], fmt(b["nodes"]), fmt(b["candidates"]),
             fmt(b["reference_evals_per_sec"], 0),
             fmt(b["optimized_evals_per_sec"], 0),
             fmt(b["speedup"]) + "x",
             fmt(b["optimized_allocs_per_eval"], 3),
             fmt(b["identical"]))
            for b in data.get("benchmarks", [])]
    t = data.get("total", {})
    if t:
        rows.append(("**total**", "", "", fmt(t["reference_evals_per_sec"], 0),
                     fmt(t["optimized_evals_per_sec"], 0),
                     fmt(t["speedup"]) + "x",
                     fmt(t["optimized_allocs_per_eval"], 3),
                     fmt(t["identical"])))
    lines.append(table(["case", "nodes", "cands", "ref evals/s",
                        "opt evals/s", "speedup", "allocs/eval",
                        "identical"], rows))
    return "\n".join(lines)


def render_runtime(data):
    lines = [f"Exploration-sweep runtime: `{data.get('sweep', '?')}` "
             f"(deterministic: {fmt(data.get('deterministic', '?'))}).\n"]
    if data.get("scaling_valid") is False:
        lines.append("**Note:** run on a single-core host "
                     f"(hardware_concurrency="
                     f"{data.get('hardware_concurrency', '?')}) — the flat "
                     "jobs-sweep speedups are a host artifact, not a "
                     "regression.\n")
    # Runs missing seconds_min (truncated write, schema drift) degrade to a
    # visible note instead of a KeyError that would silently drop the whole
    # file from the report.
    complete = [r for r in data.get("runs", []) if "seconds_min" in r]
    dropped = len(data.get("runs", [])) - len(complete)
    if dropped:
        lines.append(f"**Note:** {dropped} run(s) missing `seconds_min` "
                     "omitted from the table below (truncated bench write "
                     "or schema drift — investigate the producing step).\n")
    rows = [(fmt(r["jobs"]), fmt(r["cache"]), fmt(r["seconds_min"], 4),
             fmt(r["seconds_median"], 4),
             fmt(r["speedup_vs_jobs1"]) + "x",
             fmt(parallel_efficiency(r), 3),
             fmt(r["cache_hits"]), fmt(r["cache_misses"]),
             fmt(r["cache_hit_rate"], 4))
            for r in complete]
    lines.append(table(["jobs", "cache", "min s", "median s",
                        "speedup vs jobs=1", "efficiency", "hits", "misses",
                        "hit rate"], rows))
    for scaling in runtime_scaling(data.get("runs", [])):
        lines.append(scaling)
    return "\n".join(lines)


def parallel_efficiency(run):
    """Speedup divided by worker count: 1.0 is perfect linear scaling."""
    jobs = run.get("jobs", 0)
    return run["speedup_vs_jobs1"] / jobs if jobs > 0 else 0.0


def runtime_scaling(runs):
    """jobs=1 vs jobs=N headline, one line per cache setting present."""
    missing = sum(1 for r in runs if not r.get("seconds_min", 0) > 0)
    if missing:
        yield (f"\n_Note: {missing} run(s) without a positive `seconds_min` "
               "excluded from the scaling headline._")
    for cache in sorted({r.get("cache") for r in runs}, reverse=True):
        group = [r for r in runs if r.get("cache") == cache
                 and r.get("seconds_min", 0) > 0]
        base = next((r for r in group if r.get("jobs") == 1), None)
        peak = max((r for r in group if r.get("jobs", 1) > 1),
                   key=lambda r: r["jobs"], default=None)
        if base is None or peak is None:
            continue
        ratio = base["seconds_min"] / peak["seconds_min"]
        yield (f"\nScaling (cache={fmt(cache)}): jobs=1 -> "
               f"jobs={peak['jobs']} is {fmt(ratio)}x "
               f"(parallel efficiency {fmt(ratio / peak['jobs'], 3)}, "
               f"{fmt(base['seconds_min'], 4)}s -> "
               f"{fmt(peak['seconds_min'], 4)}s).")


def render_colony(data):
    lines = ["Multi-colony ACO scaling: "
             f"`{data.get('sweep', '?')}` "
             f"(identity jobs=1 == jobs=8 per colony count: "
             f"{fmt(data.get('identity_ok', '?'))}"
             f"{', quick' if data.get('quick') else ''}).\n"]
    rows = [(fmt(r["colonies"]), fmt(r["jobs"]), fmt(r["seconds_min"], 4),
             fmt(r["seconds_median"], 4),
             fmt(r["speedup_vs_serial"]) + "x", r.get("digest", "?"))
            for r in data.get("runs", [])]
    lines.append(table(["colonies", "jobs", "min s", "median s",
                        "speedup vs serial", "digest"], rows))
    lines.append(colony_scaling_line(data))
    return "\n".join(lines)


def colony_scaling_line(data):
    """Headline: colonies=K/jobs=J vs the colonies=1/jobs=1 baseline."""
    headline = data.get("headline_speedup")
    floor = data.get("speedup_floor")
    enforced = data.get("floor_enforced")
    hw = data.get("hardware_concurrency", "?")
    if headline is None:
        return ""
    line = (f"\nColony scaling: colonies=8/jobs=8 is {fmt(headline)}x vs the "
            f"serial baseline (floor {fmt(floor)}x, "
            f"{'enforced' if enforced else 'informational'} at "
            f"hardware_concurrency={hw}); "
            f"identity: {'OK' if data.get('identity_ok') else 'VIOLATED'}.")
    if not enforced:
        line += (" Speedup floor not enforced on this host — colony "
                 "sharding needs >= 4 cores to show wall-clock wins.")
    return line


def render_portfolio(data):
    lines = ["Batched portfolio exploration vs back-to-back independent "
             f"flows: `{data.get('sweep', '?')}` "
             f"(per-program bit-identity: {fmt(data.get('identity_ok', '?'))}"
             f"{', quick' if data.get('quick') else ''}).\n"]
    rows = [(p["name"], fmt(p["weight"]), fmt(p["base_time"]),
             fmt(p["final_time"]), fmt(p["num_ises"]),
             fmt(p["weighted_benefit"], 1), p.get("digest", "?"))
            for p in data.get("programs", [])]
    lines.append(table(["program", "weight", "base", "final", "ISEs",
                        "weighted benefit", "digest"], rows))
    lines.append(portfolio_dedup_line(data))
    lines.append(portfolio_scaling_line(data))
    return "\n".join(lines)


def portfolio_dedup_line(data):
    rate = data.get("dedup_hit_rate")
    if rate is None:
        return ""
    return (f"\nCross-program dedup: eval-cache hit rate {fmt(rate, 4)} "
            f"(floor {fmt(data.get('dedup_floor', 0.0))}, "
            f"{'OK' if data.get('dedup_ok') else 'BELOW FLOOR'}); "
            f"{fmt(data.get('deduped_jobs', 0))} of "
            f"{fmt(data.get('total_jobs', 0))} jobs deduped; "
            f"isomorphic-but-renumbered: "
            f"{fmt(data.get('isomorphic_hot_blocks', 0))} hot blocks, "
            f"{fmt(data.get('isomorphic_candidates', 0))} candidates.")


def portfolio_scaling_line(data):
    headline = data.get("headline_speedup")
    if headline is None:
        return ""
    valid = data.get("scaling_valid")
    line = (f"\nBatch scaling: one portfolio run is {fmt(headline)}x vs "
            f"back-to-back flows (floor "
            f"{fmt(data.get('speedup_floor', 0.0))}x, "
            f"{'enforced' if valid else 'informational'} at "
            f"hardware_concurrency={data.get('hardware_concurrency', '?')}); "
            f"{fmt(data.get('selected_ises', 0))} ISEs in "
            f"{fmt(data.get('selected_types', 0))} shared types, "
            f"total area {fmt(data.get('total_area', 0.0))}.")
    if not valid:
        line += (" Speedup floor not enforced on this host — the flat batch "
                 "needs >= 4 cores to show wall-clock wins.")
    return line


def render_cachemodel(data):
    lines = ["Memory-hierarchy cost model gates: "
             f"`{data.get('sweep', '?')}` with cache "
             f"`{data.get('cache_config', '?')}`"
             f"{', quick' if data.get('quick') else ''}.\n",
             f"Identity: {fmt(data.get('identity_ok', '?'))} "
             f"(null-model residue-free: {fmt(data.get('null_identity', '?'))}"
             f", jobs-invariant: {fmt(data.get('jobs_identity', '?'))} at "
             f"jobs={data.get('jobs', '?')}); ISE sets changed on "
             f"{fmt(data.get('changed_programs', 0))} program(s) "
             f"({'OK' if data.get('effect_ok') else 'NO EFFECT'}); overhead "
             f"{fmt(data.get('overhead', 0.0))}x vs null model (ceiling "
             f"{fmt(data.get('overhead_ceiling', 0.0))}x, "
             f"{'OK' if data.get('overhead_ok') else 'EXCEEDED'}); L1 hit "
             f"rate {fmt(data.get('l1_hit_rate', 0.0), 4)} over "
             f"{fmt(data.get('accesses', 0))} accesses, "
             f"{fmt(data.get('annotated_nodes', 0))} nodes annotated.\n"]
    rows = [(p["name"], p.get("null_digest", "?"),
             p.get("cache_digest", "?"), fmt(p.get("changed", "?")))
            for p in data.get("programs", [])]
    lines.append(table(["program", "null digest", "cache digest",
                        "ISE set changed"], rows))
    return "\n".join(lines)


def render_cachesweep(data):
    lines = ["Cache-geometry sweep (`isex sweep`): "
             f"kernel `{data.get('kernel', '?')}`, machine "
             f"`{data.get('machine', '?')}`, seed {data.get('seed', '?')}, "
             f"{data.get('repeats', '?')} repeats per point.\n"]
    rows = []
    for r in data.get("rows", []):
        base = r.get("base_cycles", 0)
        final = r.get("final_cycles", 0)
        reduction = (base - final) / base if base else 0.0
        rows.append((fmt(r.get("l1_size", "?")), fmt(r.get("l1_ways", "?")),
                     fmt(r.get("l1_line", "?")),
                     fmt(r.get("l1_hit_rate", 0.0), 4),
                     fmt(base), fmt(final), fmt(reduction, 3),
                     fmt(r.get("ises", "?"))))
    lines.append(table(["L1 size", "ways", "line", "L1 hit rate",
                        "base cycles", "final cycles", "reduction",
                        "ISEs"], rows))
    return "\n".join(lines)


def render_google_benchmark(data):
    ctx = data.get("context", {})
    lines = [f"google-benchmark run ({ctx.get('date', 'unknown date')}, "
             f"{ctx.get('num_cpus', '?')} CPUs).\n"]
    rows = [(b.get("name", "?"),
             fmt(b.get("real_time", 0.0), 1) + " " + b.get("time_unit", "ns"),
             fmt(b.get("iterations", 0)))
            for b in data.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"]
    lines.append(table(["benchmark", "time", "iterations"], rows))
    return "\n".join(lines)


def render_generic(data):
    rows = [(k, fmt(v)) for k, v in data.items()
            if isinstance(v, (str, int, float, bool))]
    if not rows:
        return "_(no top-level scalars to summarize)_\n"
    return table(["key", "value"], rows)


def render(data):
    if data.get("bench") == "antwalk_hotpath":
        return render_antwalk(data)
    if data.get("bench") == "candidate_eval_pipeline":
        return render_candidates(data)
    if data.get("bench") == "colony_scaling":
        return render_colony(data)
    if data.get("bench") == "portfolio":
        return render_portfolio(data)
    if data.get("bench") == "cachemodel":
        return render_cachemodel(data)
    if data.get("bench") == "cache_sweep":
        return render_cachesweep(data)
    if "sweep" in data and "runs" in data:
        return render_runtime(data)
    if "context" in data and "benchmarks" in data:
        return render_google_benchmark(data)
    return render_generic(data)


# Keys whose `false` value marks a broken bit-identity / determinism gate.
# The scan is recursive so per-benchmark "identical": false entries trip it
# too, not just the top-level stamps.
IDENTITY_KEYS = frozenset(
    {"identity_ok", "identity", "identical", "deterministic",
     "null_identity", "jobs_identity"})


def identity_failures(data, prefix=""):
    """Yield dotted paths of every false identity stamp in the JSON tree."""
    if isinstance(data, dict):
        for key, value in data.items():
            path = f"{prefix}.{key}" if prefix else key
            if key in IDENTITY_KEYS and value is False:
                yield path
            else:
                yield from identity_failures(value, path)
    elif isinstance(data, list):
        for i, value in enumerate(data):
            yield from identity_failures(value, f"{prefix}[{i}]")


def self_test():
    """Unit checks run by the CI observability step (--self-test)."""
    # A runtime file with a truncated run must degrade with a note, not
    # drop the run silently or KeyError the whole section.
    out = render_runtime({
        "sweep": "t", "runs": [
            {"jobs": 1, "cache": True, "seconds_min": 1.0,
             "seconds_median": 1.0, "speedup_vs_jobs1": 1.0,
             "cache_hits": 1, "cache_misses": 1, "cache_hit_rate": 0.5},
            {"jobs": 8, "cache": True},  # truncated: no seconds_min
        ]})
    assert "missing `seconds_min`" in out, "no degradation note emitted"
    assert "without a positive `seconds_min`" in out, \
        "scaling headline drops runs silently"
    # The identity scan must see both top-level stamps and nested
    # per-benchmark flags, and ignore true ones.
    found = list(identity_failures(
        {"identity_ok": False,
         "benchmarks": [{"identical": True}, {"identical": False}],
         "nested": {"jobs_identity": False}}))
    assert found == ["identity_ok", "benchmarks[1].identical",
                     "nested.jobs_identity"], found
    assert not list(identity_failures({"identity_ok": True})), \
        "true stamps flagged"
    # The new renderers must handle their producers' shapes.
    assert "cost model gates" in render_cachemodel(
        {"identity_ok": True, "programs": [
            {"name": "p", "null_digest": "0", "cache_digest": "1",
             "changed": True}]})
    assert "Cache-geometry sweep" in render_cachesweep(
        {"rows": [{"l1_size": 4096, "l1_ways": 2, "l1_line": 32,
                   "l1_hit_rate": 0.9, "base_cycles": 100,
                   "final_cycles": 80, "ises": 3}]})
    print("bench_report self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=".",
                        help="directory holding BENCH_*.json (default: cwd)")
    parser.add_argument("--out", default="-",
                        help="output markdown path (default: stdout)")
    parser.add_argument("--check-identity", action="store_true",
                        help="exit 3 if any BENCH_*.json stamps an identity "
                             "key false (CI gate)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in unit checks and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    bench_dir = Path(args.dir)
    if not bench_dir.is_dir():
        print(f"error: --dir {bench_dir} is not a directory", file=sys.stderr)
        return 2
    files = sorted(bench_dir.glob("BENCH_*.json"))
    sections = ["# Benchmark report\n"]
    if not files:
        sections.append(f"_No BENCH_*.json files found in `{bench_dir}`._\n")
    broken_identity = []  # (file name, dotted key path)
    for path in files:
        sections.append(f"## {path.name}\n")
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            sections.append(f"_unreadable: {err}_\n")
            continue
        if not isinstance(data, dict):
            sections.append("_top level is not a JSON object_\n")
            continue
        broken_identity.extend(
            (path.name, key) for key in identity_failures(data))
        try:
            sections.append(render(data))
        except (KeyError, TypeError, ValueError) as err:
            # A recognized shape with missing/mistyped fields (truncated
            # write, schema drift): degrade to the scalar listing and say so
            # instead of dying with a traceback mid-report.
            sections.append(f"_malformed ({type(err).__name__}: {err}); "
                            "top-level scalars only:_\n\n")
            sections.append(render_generic(data))

    if broken_identity:
        sections.append("## Identity gates\n")
        sections.append("**BROKEN** — determinism/bit-identity stamps are "
                        "false:\n\n" +
                        "\n".join(f"- `{name}`: `{key}`"
                                  for name, key in broken_identity) + "\n")

    report = "\n".join(sections)
    if args.out == "-":
        sys.stdout.write(report)
    else:
        try:
            Path(args.out).write_text(report)
        except OSError as err:
            print(f"error: cannot write --out {args.out}: {err}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.out} ({len(files)} bench file(s))")
    if args.check_identity and broken_identity:
        for name, key in broken_identity:
            print(f"identity violation: {name}: {key}", file=sys.stderr)
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
