// custom_kernel_tac: bring your own kernel.
//
// Reads a three-address-code basic block from a file (or uses a built-in
// Galois-field multiply demo), explores ISEs for a configurable machine,
// and emits a Graphviz DOT rendering with the chosen ISEs highlighted.
//
//   $ ./custom_kernel_tac [kernel.tac [issue_width]]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/mi_explorer.hpp"
#include "dfg/dot_export.hpp"
#include "hwlib/hw_library.hpp"
#include "isa/tac_parser.hpp"
#include "util/rng.hpp"

namespace {

constexpr const char* kDemoKernel = R"(
  # GF(2^8) multiply step (AES mixcolumns flavor)
  hi = srl a, 7
  msk = subu 0, hi
  red = andi msk, 27
  sh = sll a, 1
  shm = andi sh, 255
  a2 = xor shm, red
  lb0 = andi b, 1
  sel = subu 0, lb0
  term = and a, sel
  acc2 = xor acc, term
  b2 = srl b, 1
  live_out a2, acc2, b2
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace isex;

  std::string source = kDemoKernel;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }
  const int issue_width = argc > 2 ? std::atoi(argv[2]) : 2;
  if (issue_width < 1) {
    std::fprintf(stderr, "issue width must be >= 1\n");
    return 1;
  }

  isa::ParsedBlock block;
  try {
    block = isa::parse_tac(source);
  } catch (const isa::ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }

  const auto machine = sched::MachineConfig::make(issue_width, {6, 3});
  isa::IsaFormat format;
  format.reg_file = machine.reg_file;
  const hw::HwLibrary library = hw::HwLibrary::paper_default();
  const core::MultiIssueExplorer explorer(machine, format, library);

  Rng rng(2024);
  const core::ExplorationResult result =
      explorer.explore_best_of(block.graph, 5, rng);

  std::fprintf(stderr, "%d-issue: %d -> %d cycles, %zu ISE(s)\n", issue_width,
               result.base_cycles, result.final_cycles, result.ises.size());

  // DOT on stdout, candidates shaded: pipe through `dot -Tsvg`.
  std::vector<dfg::NodeSet> highlights;
  for (const auto& ise : result.ises) highlights.push_back(ise.original_nodes);
  dfg::DotOptions options;
  options.graph_name = "kernel";
  options.highlights = highlights;
  dfg::write_dot(std::cout, block.graph, options);
  return 0;
}
