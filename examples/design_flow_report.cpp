// design_flow_report: the full suite at a glance — runs the complete ISE
// design flow (MI algorithm) over all seven benchmarks in both compiler
// flavors and prints a per-program summary table.
//
//   $ ./design_flow_report [issue_width] [read_ports] [write_ports]
#include <cstdlib>
#include <iostream>

#include "bench_suite/kernels.hpp"
#include "flow/design_flow.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace isex;

  const int issue = argc > 1 ? std::atoi(argv[1]) : 2;
  const int rports = argc > 2 ? std::atoi(argv[2]) : 6;
  const int wports = argc > 3 ? std::atoi(argv[3]) : 3;

  flow::FlowConfig config;
  config.machine = sched::MachineConfig::make(issue, {rports, wports});
  config.constraints.max_ises = 8;
  config.constraints.area_budget = 80000.0;
  const hw::HwLibrary library = hw::HwLibrary::paper_default();

  std::cout << "ISE design flow (MI), machine " << config.machine.label()
            << ", <=8 ISEs, 80000 um^2\n\n";

  TablePrinter table;
  table.set_header({"benchmark", "opt", "base cycles", "final cycles",
                    "reduction", "ISE types", "area (um^2)"});
  for (const auto benchmark : bench_suite::all_benchmarks()) {
    for (const auto level :
         {bench_suite::OptLevel::kO0, bench_suite::OptLevel::kO3}) {
      const auto program = bench_suite::make_program(benchmark, level);
      const auto result = flow::run_design_flow(program, library, config);
      table.add_row({std::string(bench_suite::name(benchmark)),
                     std::string(bench_suite::name(level)),
                     std::to_string(result.base_time()),
                     std::to_string(result.final_time()),
                     TablePrinter::pct(result.reduction()),
                     std::to_string(result.num_ise_types()),
                     TablePrinter::fmt(result.total_area(), 1)});
    }
  }
  table.print(std::cout);
  return 0;
}
