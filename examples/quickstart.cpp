// Quickstart: explore ISEs for one hand-written basic block on a 2-issue
// machine and print what the explorer found.
//
//   $ ./quickstart
//
// Walkthrough of the public API:
//   1. write a basic block in three-address form and parse it into a DFG;
//   2. pick the machine (issue width, register ports) and the hardware
//      library (the paper's Table 5.1.1);
//   3. run MultiIssueExplorer and inspect the committed ISEs.
#include <cstdio>

#include "core/mi_explorer.hpp"
#include "hwlib/hw_library.hpp"
#include "isa/tac_parser.hpp"
#include "util/rng.hpp"

int main() {
  using namespace isex;

  // A CRC-like xor/shift/and chain with a little side arithmetic.
  const char* source = R"(
    b0 = andi crc, 1
    b1 = andi data, 1
    t0 = xor b0, b1
    t1 = subu 0, t0
    m0 = and t1, poly
    s0 = srl crc, 1
    crc2 = xor s0, m0
    d2 = srl data, 1
    i2 = addiu i, 1
    c = slti i2, 8
    live_out crc2, d2, i2, c
  )";
  const isa::ParsedBlock block = isa::parse_tac(source);
  std::printf("parsed %zu operations, %zu data edges\n",
              block.graph.num_nodes(), block.graph.num_edges());

  // 2-issue machine with a 4-read/2-write register file.
  const auto machine = sched::MachineConfig::make(2, {4, 2});
  isa::IsaFormat format;
  format.reg_file = machine.reg_file;

  const hw::HwLibrary library = hw::HwLibrary::paper_default();
  const core::MultiIssueExplorer explorer(machine, format, library);

  Rng rng(42);
  const core::ExplorationResult result =
      explorer.explore_best_of(block.graph, /*repeats=*/5, rng);

  std::printf("schedule: %d cycles without ISEs -> %d cycles with ISEs\n",
              result.base_cycles, result.final_cycles);
  for (std::size_t i = 0; i < result.ises.size(); ++i) {
    const core::ExploredIse& ise = result.ises[i];
    std::printf("ISE #%zu: %zu ops, latency %d cycle(s), area %.1f um^2, "
                "IN=%d OUT=%d, gain %d cycle(s)\n  members:",
                i + 1, ise.original_nodes.count(), ise.eval.latency_cycles,
                ise.eval.area, ise.in_count, ise.out_count, ise.gain_cycles);
    for (const std::string& label : ise.member_labels)
      std::printf(" %s", label.c_str());
    std::printf("\n");
  }
  if (result.ises.empty())
    std::printf("no profitable ISE found (schedule already dense)\n");
  return 0;
}
