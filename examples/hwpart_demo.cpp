// hwpart_demo: the Ch. 6 adaptation in action — partition a JPEG-encoder
// style task pipeline between a CPU and a hardware region under an area
// budget, comparing the ACO explorer against the classic baselines.
//
//   $ ./hwpart_demo [area_budget]
#include <cstdio>
#include <cstdlib>

#include "hwpart/partition.hpp"

namespace {

isex::hwpart::TaskGraph make_encoder() {
  using isex::hwpart::TaskGraph;
  TaskGraph g;
  // (software time; hardware variants as {time, area})
  const auto rgb2yuv = g.add_task("rgb2yuv", 18.0, {{4.0, 1200.0}});
  const auto subsample = g.add_task("subsample", 6.0, {{2.0, 400.0}});
  const auto dct = g.add_task("dct", 30.0, {{6.0, 2600.0}, {3.0, 5200.0}});
  const auto quant = g.add_task("quantize", 12.0, {{3.0, 900.0}});
  const auto zigzag = g.add_task("zigzag", 4.0, {});
  const auto rle = g.add_task("rle", 8.0, {{4.0, 700.0}});
  const auto huffman = g.add_task("huffman", 16.0, {{7.0, 1800.0}});
  const auto emit = g.add_task("emit", 5.0, {});
  g.add_dependence(rgb2yuv, subsample, 1.0);
  g.add_dependence(subsample, dct, 1.0);
  g.add_dependence(dct, quant, 1.0);
  g.add_dependence(quant, zigzag, 0.5);
  g.add_dependence(zigzag, rle, 0.5);
  g.add_dependence(rle, huffman, 0.5);
  g.add_dependence(huffman, emit, 1.0);
  return g;
}

void report(const char* tag, const isex::hwpart::TaskGraph& g,
            const isex::hwpart::Assignment& a) {
  std::printf("%-12s makespan=%6.1f  hw area=%7.1f  hw tasks:", tag,
              a.makespan, a.hw_area);
  for (isex::hwpart::TaskId t = 0; t < g.num_tasks(); ++t) {
    if (a.option[t] != 0)
      std::printf(" %s(v%d)", g.task(t).name.c_str(), a.option[t]);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace isex::hwpart;

  const double budget = argc > 1 ? std::atof(argv[1]) : 6000.0;
  const TaskGraph g = make_encoder();

  std::printf("HW/SW partitioning of a JPEG-encoder pipeline "
              "(area budget %.0f)\n\n", budget);

  report("all-sw", g, all_software(g));
  report("all-hw", g, all_hardware(g));
  report("greedy", g, greedy_partition(g, budget));

  PartitionParams params;
  params.area_budget = budget;
  const PartitionExplorer explorer(params);
  isex::Rng rng(2718);
  report("ACO", g, explorer.explore_best_of(g, 5, rng));
  return 0;
}
