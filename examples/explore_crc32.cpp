// explore_crc32: run both explorers (the paper's schedule-aware "MI" and
// the legality-only baseline "SI") on the CRC32 benchmark and compare —
// the single-benchmark version of the paper's headline experiment.
//
//   $ ./explore_crc32
#include <cstdio>

#include "bench_suite/kernels.hpp"
#include "flow/design_flow.hpp"

namespace {

void report(const char* tag, const isex::flow::FlowResult& r) {
  std::printf("%-3s base=%llu cycles  final=%llu cycles  reduction=%.2f%%  "
              "area=%.1f um^2  ise-types=%d\n",
              tag, static_cast<unsigned long long>(r.base_time()),
              static_cast<unsigned long long>(r.final_time()),
              r.reduction() * 100.0, r.total_area(), r.num_ise_types());
  for (const auto& sel : r.selection.selected) {
    std::printf("    block %zu ISE@%zu: gain %d cyc/exec, area %.1f%s\n",
                sel.entry.block_index, sel.entry.position,
                sel.entry.ise.gain_cycles, sel.entry.ise.eval.area,
                sel.hardware_shared ? " (shared ASFU)" : "");
  }
}

}  // namespace

int main() {
  using namespace isex;

  const flow::ProfiledProgram program =
      bench_suite::make_program(bench_suite::Benchmark::kCrc32,
                                bench_suite::OptLevel::kO3);
  const hw::HwLibrary library = hw::HwLibrary::paper_default();

  flow::FlowConfig config;
  config.machine = sched::MachineConfig::make(2, {6, 3});
  config.constraints.max_ises = 4;
  config.constraints.area_budget = 40000.0;
  config.seed = 7;

  std::printf("CRC32 (O3) on %s, <=4 ISEs, 40000 um^2 budget\n",
              config.machine.label().c_str());

  config.algorithm = flow::Algorithm::kMultiIssue;
  report("MI", flow::run_design_flow(program, library, config));

  config.algorithm = flow::Algorithm::kSingleIssue;
  report("SI", flow::run_design_flow(program, library, config));
  return 0;
}
