t1 = addu a, b
t2 = xor t1, c
t3 = sll t2, 2
t4 = subu t3, a
t5 = and t4, t1
t6 = or t5, t2
t7 = srl t6, 3
t8 = addu t7, t4
t9 = xor t8, t5
live_out t9
