x = addu a, b
y0 = sll x, 1
y1 = srl x, 1
y2 = xor x, c
y3 = and x, d
y4 = or x, e
z0 = addu y0, y1
z1 = subu y2, y3
z2 = nor z0, z1
z3 = xor z2, y4
live_out z3
