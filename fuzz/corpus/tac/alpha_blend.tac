# 8-bit alpha blend: out = (fg*alpha + bg*(255-alpha)) >> 8
ia = subu 255, alpha
m0 = mult fg, alpha
m1 = mult bg, ia
s = addu m0, m1
blend = srl s, 8
live_out blend
