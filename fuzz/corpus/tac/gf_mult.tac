# GF(2^8) multiply step (AES MixColumns flavor): one iteration of the
# Russian-peasant multiply over the Rijndael field.
#   a2  = xtime(a)          (shift left, conditional reduce by 0x1b)
#   acc2 = acc ^ (a & -(b & 1))
#   b2  = b >> 1
hi = srl a, 7
msk = subu 0, hi
red = andi msk, 27
sh = sll a, 1
shm = andi sh, 255
a2 = xor shm, red
lb0 = andi b, 1
sel = subu 0, lb0
term = and a, sel
acc2 = xor acc, term
b2 = srl b, 1
live_out a2, acc2, b2
