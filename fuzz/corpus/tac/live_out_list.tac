t0 = addu a, b
t1 = subu t0, c
t2 = and t0, t1
live_out t0, t1
live_out t2
