# SHA-256 small sigma0: ror(x,7) ^ ror(x,18) ^ (x >> 3)
# (rotates lowered to shift pairs, as a RISC compiler emits them)
r7a = srl x, 7
r7b = sll x, 25
r7 = or r7a, r7b
r18a = srl x, 18
r18b = sll x, 14
r18 = or r18a, r18b
s3 = srl x, 3
t0 = xor r7, r18
sigma = xor t0, s3
live_out sigma
