# hex, negative, zero, and boundary immediates
a = andi x, 0xff
b = addiu x, -4
c = ori x, 0
d = xori x, 0xffffffff
e = slti x, -2147483648
f = sll a, 31
g = lui 0x7fff
h = addu d, e
i = or f, g
j = nor h, i
