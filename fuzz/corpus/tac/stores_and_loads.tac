# every memory form: word/half/byte loads and stores, immediate store value
a = lw [p]
b = lh [q]
c = lbu [r]
s = addu a, b
t = xor s, c
sw [p], t
sh [q], 0x7fff
sb [r], 255
