# leading comment

   t = addu a, b   # trailing comment
	u = xor	t, c
# interleaved comment

live_out u
