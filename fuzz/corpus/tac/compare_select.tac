lt = slt a, b
ge = sltiu lt, 1
m0 = mult a, lt
m1 = multu b, ge
s = addu m0, m1
live_out s
