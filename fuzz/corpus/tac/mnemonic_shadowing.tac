# variables may shadow store mnemonics
sh = sll a, 1
sb = andi sh, 255
sw = addu sh, sb
live_out sw
