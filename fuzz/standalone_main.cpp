// Replay driver for toolchains without libFuzzer (GCC builds).
//
// Linked into the fuzz targets instead of -fsanitize=fuzzer when the
// compiler lacks it: runs every file (or every file under every directory)
// named on the command line through LLVMFuzzerTestOneInput once, so corpus
// and regression inputs reproduce crashes with nothing but a C++ compiler.
// libFuzzer-style "-flag" arguments are ignored, which keeps CI invocations
// copy-pasteable between the two build modes.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::uint8_t> read_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') continue;  // libFuzzer flag; ignore
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg, ec))
        if (entry.is_regular_file()) inputs.push_back(entry.path());
    } else if (std::filesystem::is_regular_file(arg, ec)) {
      inputs.push_back(arg);
    } else {
      std::fprintf(stderr, "error: no such input: %s\n", arg.c_str());
      return 2;
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: %s <corpus-dir-or-file>... [-libfuzzer-flags ignored]\n"
                 "(standalone replay build; compile with clang for real "
                 "libFuzzer mutation)\n",
                 argv[0]);
    return 2;
  }
  for (const auto& path : inputs) {
    const std::vector<std::uint8_t> bytes = read_bytes(path);
    std::fprintf(stderr, "running: %s (%zu bytes)\n", path.c_str(),
                 bytes.size());
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  }
  std::fprintf(stderr, "replayed %zu input(s) without a crash\n",
               inputs.size());
  return 0;
}
