// libFuzzer target: cache-config spec parser (see fuzz_targets.hpp).
//
//   ./fuzz/fuzz_cache_config fuzz/corpus/cachecfg -max_total_time=30
#include "fuzz_targets.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return isex::fuzz::run_cache_config_input(data, size);
}
