// Shared fuzz-harness entry points.
//
// The same two functions drive three consumers, so a crash found by
// libFuzzer reproduces everywhere:
//   * fuzz_tac_parser / fuzz_roundtrip (libFuzzer builds, or the standalone
//     replay driver when the toolchain lacks -fsanitize=fuzzer);
//   * tests/test_fuzz_regressions.cpp, which replays fuzz/corpus/ and
//     fuzz/regressions/ as plain GoogleTest cases on every CI run.
//
// Each function treats the byte buffer as one TAC source and enforces the
// input-boundary contracts from docs/ROBUSTNESS.md with ISEX_ASSERT — any
// violation aborts, which is exactly the signal a fuzzer wants:
//   * run_tac_parser_input: parse_tac_checked never throws; accepted blocks
//     always pass dfg::validate; rejected inputs carry a structured code
//     and location; the permissive parse_tac throws nothing but ParseError.
//   * run_roundtrip_input: every parser-accepted, validator-accepted graph
//     schedules on paper-sweep machines without UB — all nodes placed,
//     dependences respected, makespan within structural bounds.
#pragma once

#include <cstddef>
#include <cstdint>

namespace isex::fuzz {

/// Parse (strict + permissive) and validate; returns 0 (libFuzzer ABI).
int run_tac_parser_input(const std::uint8_t* data, std::size_t size);

/// Parse → validate → schedule round-trip; returns 0 (libFuzzer ABI).
int run_roundtrip_input(const std::uint8_t* data, std::size_t size);

/// Cache-config spec parser (mem::parse_cache_config): accepted configs
/// must validate, round-trip through label(), fingerprint stably, and drive
/// a CacheModel without UB; rejections must carry an E07xx code and a
/// message.  Returns 0 (libFuzzer ABI).
int run_cache_config_input(const std::uint8_t* data, std::size_t size);

}  // namespace isex::fuzz
