x = sw [p], v
