# three register operands on a two-source opcode (kParseArity strict)
x = addu a, b, c
