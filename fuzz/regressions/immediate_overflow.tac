# pre-hardening: strtoll overflow was silently truncated (kParseImmediateRange)
x = addiu a, 99999999999999999999
