x = addu a, -
