v = lw [p
