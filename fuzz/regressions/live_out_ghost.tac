t = addu a, b
live_out ghost
