# pre-hardening: `a` silently became a live-in of its own definition
# (kParseSelfReference in strict mode)
a = addu a, b
