#include "fuzz_targets.hpp"

#include <cstdio>
#include <string_view>

#include "dfg/validate.hpp"
#include "isa/tac_parser.hpp"
#include "mem/cache_model.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/machine_config.hpp"
#include "util/assert.hpp"

namespace isex::fuzz {
namespace {

/// Inputs larger than any plausible basic block are truncated instead of
/// rejected: the prefix still exercises the parser, and the cap keeps a
/// single iteration fast enough for the 30s CI smoke run.
constexpr std::size_t kMaxInputBytes = std::size_t{1} << 16;

std::string_view as_source(const std::uint8_t* data, std::size_t size) {
  if (size > kMaxInputBytes) size = kMaxInputBytes;
  return {reinterpret_cast<const char*>(data), size};
}

[[noreturn]] void contract_violation(const char* what,
                                     const ValidationReport* report) {
  std::fprintf(stderr, "fuzz contract violation: %s\n", what);
  if (report != nullptr)
    std::fputs(report->to_string().c_str(), stderr);
  std::abort();
}

}  // namespace

int run_tac_parser_input(const std::uint8_t* data, std::size_t size) {
  const std::string_view source = as_source(data, size);

  // Strict boundary: never throws, and the two outcomes are airtight —
  // either a block whose graph validates, or a coded, located Error.
  const Expected<isa::ParsedBlock> checked = isa::parse_tac_checked(source);
  if (checked.has_value()) {
    const isa::ParsedBlock& block = checked.value();
    if (!block.graph.is_acyclic())
      contract_violation("parser accepted input but produced a cyclic DFG",
                         nullptr);
    const ValidationReport report = dfg::validate(block.graph);
    if (!report.ok())
      contract_violation("parser-accepted graph failed dfg::validate",
                         &report);
    ISEX_ASSERT_MSG(block.statements.size() <= block.graph.num_nodes(),
                    "more statements than DFG nodes");
  } else {
    const Error& e = checked.error();
    ISEX_ASSERT_MSG(e.code() != ErrorCode::kOk,
                    "rejection without an error code");
    ISEX_ASSERT_MSG(e.loc().line >= 0, "negative source line in diagnostic");
    ISEX_ASSERT_MSG(!e.message().empty(), "rejection without a message");
  }

  // Permissive boundary: the only exception type that may escape is
  // ParseError; anything else (bad_alloc aside) is a harness catch.
  try {
    const isa::ParsedBlock block = isa::parse_tac(source);
    if (!block.graph.is_acyclic())
      contract_violation("permissive parser produced a cyclic DFG", nullptr);
  } catch (const isa::ParseError&) {
    // expected rejection path
  }
  return 0;
}

int run_roundtrip_input(const std::uint8_t* data, std::size_t size) {
  const std::string_view source = as_source(data, size);
  const Expected<isa::ParsedBlock> checked = isa::parse_tac_checked(source);
  if (!checked.has_value()) return 0;  // rejected inputs go no further

  const dfg::Graph& graph = checked.value().graph;
  const ValidationReport report = dfg::validate(graph);
  if (!report.ok())
    contract_violation("parser-accepted graph failed dfg::validate", &report);

  const auto n = graph.num_nodes();
  if (n == 0 || n > 512) return 0;  // strict parse rejects empty; cap cost

  // Validated-accepted graphs must schedule without UB on both ends of the
  // paper's machine sweep, and the schedule must be structurally sound.
  const sched::MachineConfig machines[] = {
      sched::MachineConfig::make(2, {4, 2}),
      sched::MachineConfig::make(4, {10, 5}),
  };
  for (const sched::MachineConfig& machine : machines) {
    const sched::ListScheduler scheduler(machine);
    const sched::Schedule schedule = scheduler.run(graph);
    ISEX_ASSERT_MSG(schedule.slot.size() == n, "schedule lost nodes");
    ISEX_ASSERT_MSG(schedule.cycles >= 1, "non-empty block in zero cycles");
    const int floor_cycles = static_cast<int>(
        (n + static_cast<std::size_t>(machine.issue_width) - 1) /
        static_cast<std::size_t>(machine.issue_width));
    ISEX_ASSERT_MSG(schedule.cycles >= floor_cycles,
                    "makespan below the issue-width bound");
    for (dfg::NodeId v = 0; v < n; ++v) {
      ISEX_ASSERT_MSG(
          schedule.slot[v] >= 0 && schedule.slot[v] < schedule.cycles,
          "node placed outside the makespan");
      // Parser graphs carry only unit-latency PISA ops: every consumer
      // must issue strictly after its producer.
      for (const dfg::NodeId s : graph.succs(v))
        ISEX_ASSERT_MSG(schedule.slot[s] > schedule.slot[v],
                        "schedule violates a dependence");
    }
  }
  return 0;
}

int run_cache_config_input(const std::uint8_t* data, std::size_t size) {
  // Specs are one short line; a longer prefix still exercises the parser.
  constexpr std::size_t kMaxSpecBytes = 4096;
  if (size > kMaxSpecBytes) size = kMaxSpecBytes;
  const std::string_view spec{reinterpret_cast<const char*>(data), size};

  const Expected<mem::CacheConfig> parsed = mem::parse_cache_config(spec);
  if (!parsed.has_value()) {
    const Error& e = parsed.error();
    const auto code = static_cast<int>(e.code());
    ISEX_ASSERT_MSG(code >= 701 && code <= 704,
                    "cache-config rejection outside the E07xx block");
    ISEX_ASSERT_MSG(!e.message().empty(), "rejection without a message");
    return 0;
  }

  // Accepted configs must validate cleanly (warnings allowed) ...
  const ValidationReport report = mem::validate(*parsed);
  if (!report.ok())
    contract_violation("parser-accepted cache config failed validate",
                       &report);

  // ... round-trip through the canonical label with an identical
  // fingerprint ...
  const Expected<mem::CacheConfig> again =
      mem::parse_cache_config(parsed->label());
  ISEX_ASSERT_MSG(again.has_value(), "canonical label failed to re-parse");
  ISEX_ASSERT_MSG(*again == *parsed, "label round-trip changed the config");
  ISEX_ASSERT_MSG(mem::fingerprint(*again, 1) == mem::fingerprint(*parsed, 1),
                  "label round-trip changed the fingerprint");

  // ... and drive a simulation without UB.  A handful of accesses spanning
  // both levels' set ranges; latencies must be one of the three configured
  // levels.
  mem::CacheModel model(*parsed);
  for (const std::uint64_t address :
       {std::uint64_t{0}, std::uint64_t{0x1f}, std::uint64_t{4096},
        std::uint64_t{1} << 20, std::uint64_t{0}}) {
    const int latency = model.access(address, 4);
    ISEX_ASSERT_MSG(latency == parsed->l1.hit_latency ||
                        latency == parsed->l2.hit_latency ||
                        latency == parsed->mem_latency,
                    "access latency matches no configured level");
  }
  ISEX_ASSERT_MSG(model.stats().accesses >= 5, "simulation lost accesses");
  return 0;
}

}  // namespace isex::fuzz
