// libFuzzer target: parse → validate → schedule round-trip (see
// fuzz_targets.hpp).
//
//   ./fuzz/fuzz_roundtrip fuzz/corpus/tac -max_total_time=30
#include "fuzz_targets.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return isex::fuzz::run_roundtrip_input(data, size);
}
